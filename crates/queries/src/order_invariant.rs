//! Structures with order (§3.6 of the survey): order-invariant queries.
//!
//! In most database applications domains are totally ordered, so the
//! right setting is structures `(A, <)`. A sentence over `σ ∪ {<}` is
//! **order-invariant** if its truth value does not depend on which
//! linear order is attached: it then defines a query on plain
//! σ-structures. The survey's §3.6 discusses how the expressivity
//! bounds fare in this setting (order-invariant FO is known to be more
//! expressive than FO — Gurevich — while locality partially survives).
//!
//! This module provides the executable tool: [`invariant_value`]
//! evaluates a `σ ∪ {<}` sentence under **every** linear order on the
//! domain (exhaustively, so structures must be small) and reports
//! whether the value is order-invariant, together with a
//! counterexample pair of orders when it is not.

use fmt_eval::naive;
use fmt_logic::Formula;
use fmt_structures::{Elem, Signature, Structure, StructureBuilder};
use std::sync::Arc;

/// Extends a signature with a fresh binary order symbol `<`.
///
/// # Panics
/// Panics if the signature already declares `<`.
pub fn with_order(sig: &Signature) -> Arc<Signature> {
    assert!(sig.relation("<").is_none(), "signature already has '<'");
    let mut b = Signature::builder();
    for (_, name, arity) in sig.relations() {
        b = b.relation(name, arity);
    }
    for (_, name) in sig.constants() {
        b = b.constant(name);
    }
    b.relation("<", 2).finish_arc()
}

/// Expands a σ-structure to a `σ ∪ {<}` structure using the linear
/// order in which `ranking[i]` is the element of rank `i` (smallest
/// first).
///
/// # Panics
/// Panics if `ranking` is not a permutation of the domain.
pub fn expand_with_order(
    s: &Structure,
    ordered_sig: &Arc<Signature>,
    ranking: &[Elem],
) -> Structure {
    assert_eq!(
        ranking.len(),
        s.size() as usize,
        "ranking must cover the domain"
    );
    let lt = ordered_sig.relation("<").expect("ordered signature");
    let mut b = StructureBuilder::new(ordered_sig.clone(), s.size());
    for (r, name, _) in s.signature().relations() {
        let target = ordered_sig.relation(name).expect("copied relation");
        for t in s.rel(r).iter() {
            b.add(target, t).expect("in range");
        }
    }
    for (c, name) in s.signature().constants() {
        let target = ordered_sig.constant(name).expect("copied constant");
        b.set_constant(target, s.constant(c));
    }
    for i in 0..ranking.len() {
        for j in (i + 1)..ranking.len() {
            b.add(lt, &[ranking[i], ranking[j]]).expect("in range");
        }
    }
    b.build().expect("constants copied")
}

/// The outcome of an order-invariance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Invariance {
    /// The sentence has the same value under every linear order.
    Invariant(bool),
    /// Two orders disagree: the rankings and their respective values.
    Dependent {
        /// A ranking under which the sentence is true.
        true_under: Vec<Elem>,
        /// A ranking under which the sentence is false.
        false_under: Vec<Elem>,
    },
}

/// Evaluates `f` (a sentence over `σ ∪ {<}`) on `s` under every linear
/// order of the domain.
///
/// # Panics
/// Panics if `f` is not a sentence or `s.size() > 8` (there are `n!`
/// orders).
pub fn invariant_value(s: &Structure, ordered_sig: &Arc<Signature>, f: &Formula) -> Invariance {
    assert!(f.is_sentence(), "order-invariance concerns sentences");
    assert!(s.size() <= 8, "exhaustive order check is bound to n ≤ 8");
    let n = s.size() as usize;
    let mut ranking: Vec<Elem> = (0..n as Elem).collect();
    let mut first_true: Option<Vec<Elem>> = None;
    let mut first_false: Option<Vec<Elem>> = None;

    // Heap's algorithm over rankings.
    let mut c = vec![0usize; n.max(1)];
    let consider = |ranking: &[Elem],
                    first_true: &mut Option<Vec<Elem>>,
                    first_false: &mut Option<Vec<Elem>>| {
        let expanded = expand_with_order(s, ordered_sig, ranking);
        if naive::check_sentence(&expanded, f) {
            first_true.get_or_insert_with(|| ranking.to_vec());
        } else {
            first_false.get_or_insert_with(|| ranking.to_vec());
        }
    };
    consider(&ranking, &mut first_true, &mut first_false);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                ranking.swap(0, i);
            } else {
                ranking.swap(c[i], i);
            }
            consider(&ranking, &mut first_true, &mut first_false);
            if first_true.is_some() && first_false.is_some() {
                break; // dependence established
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    match (first_true, first_false) {
        (Some(t), Some(fl)) => Invariance::Dependent {
            true_under: t,
            false_under: fl,
        },
        (Some(_), None) => Invariance::Invariant(true),
        (None, Some(_)) => Invariance::Invariant(false),
        (None, None) => unreachable!("at least one order was evaluated"),
    }
}

/// `true` if `f` is order-invariant on `s`.
pub fn is_invariant_on(s: &Structure, ordered_sig: &Arc<Signature>, f: &Formula) -> bool {
    matches!(invariant_value(s, ordered_sig, f), Invariance::Invariant(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_logic::parser::parse_formula;
    use fmt_structures::builders;

    fn setup() -> (Arc<Signature>, Arc<Signature>) {
        let sig = Signature::graph();
        let ordered = with_order(&sig);
        (sig, ordered)
    }

    #[test]
    fn pure_sigma_sentences_are_invariant() {
        let (_, ordered) = setup();
        let f = parse_formula(&ordered, "exists x y. E(x, y) & !(x = y)").unwrap();
        for s in [
            builders::directed_path(4),
            builders::empty_graph(3),
            builders::undirected_cycle(4),
        ] {
            match invariant_value(&s, &ordered, &f) {
                Invariance::Invariant(v) => {
                    // Value matches plain evaluation on the unordered
                    // structure.
                    let plain =
                        parse_formula(s.signature(), "exists x y. E(x, y) & !(x = y)").unwrap();
                    assert_eq!(v, naive::check_sentence(&s, &plain));
                }
                other => panic!("pure-σ sentence must be invariant, got {other:?}"),
            }
        }
    }

    #[test]
    fn order_using_but_invariant() {
        // ∃x∃y x < y just says "at least two elements".
        let (_, ordered) = setup();
        let f = parse_formula(&ordered, "exists x y. x < y").unwrap();
        assert_eq!(
            invariant_value(&builders::empty_graph(3), &ordered, &f),
            Invariance::Invariant(true)
        );
        assert_eq!(
            invariant_value(&builders::empty_graph(1), &ordered, &f),
            Invariance::Invariant(false)
        );
    }

    #[test]
    fn order_dependent_sentence_detected() {
        // "The <-minimum has an outgoing edge" depends on the order on
        // a path (source vs sink as minimum).
        let (_, ordered) = setup();
        let f = parse_formula(
            &ordered,
            "exists x. (!(exists z. z < x)) & (exists y. E(x, y))",
        )
        .unwrap();
        let s = builders::directed_path(3);
        match invariant_value(&s, &ordered, &f) {
            Invariance::Dependent {
                true_under,
                false_under,
            } => {
                // Re-verify the counterexample pair.
                let t = expand_with_order(&s, &ordered, &true_under);
                let fl = expand_with_order(&s, &ordered, &false_under);
                assert!(naive::check_sentence(&t, &f));
                assert!(!naive::check_sentence(&fl, &f));
            }
            other => panic!("expected dependence, got {other:?}"),
        }
    }

    #[test]
    fn dependent_on_symmetric_input_still_invariant() {
        // On a vertex-transitive input (a cycle with every vertex
        // looking alike), "the minimum has an outgoing edge" is
        // invariant even though it mentions the order.
        let (_, ordered) = setup();
        let f = parse_formula(
            &ordered,
            "exists x. (!(exists z. z < x)) & (exists y. E(x, y))",
        )
        .unwrap();
        assert_eq!(
            invariant_value(&builders::directed_cycle(4), &ordered, &f),
            Invariance::Invariant(true)
        );
    }

    #[test]
    fn expand_with_order_shape() {
        let (_, ordered) = setup();
        let s = builders::directed_path(3);
        let ranking = vec![2u32, 0, 1]; // 2 < 0 < 1
        let t = expand_with_order(&s, &ordered, &ranking);
        let lt = ordered.relation("<").unwrap();
        assert!(t.holds(lt, &[2, 0]));
        assert!(t.holds(lt, &[2, 1]));
        assert!(t.holds(lt, &[0, 1]));
        assert!(!t.holds(lt, &[1, 0]));
        // Original relation preserved.
        let e = ordered.relation("E").unwrap();
        assert!(t.holds(e, &[0, 1]));
        assert_eq!(t.rel(lt).len(), 3);
    }

    #[test]
    fn with_order_rejects_existing_order() {
        let sig = Signature::order();
        let result = std::panic::catch_unwind(|| with_order(&sig));
        assert!(result.is_err());
    }
}
