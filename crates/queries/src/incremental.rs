//! Incremental Datalog materialization: a long-lived [`DatalogRuntime`]
//! that keeps the semi-naive fixpoint of a [`Program`] current under
//! fact insertions and retractions instead of recomputing from scratch
//! (see `docs/incremental.md`).
//!
//! The maintenance algorithm is the classical pair:
//!
//! * **insertions** run the delta-rewritten program: every rule is
//!   re-planned with the batch engine's greedy planner once per
//!   `(rule, delta position)` and driven by the row ids appended (or
//!   revived) since the last round, joining the other body atoms
//!   against the full current extents;
//! * **retractions** run DRed (delete–rederive): an over-deletion pass
//!   applies the same delta rules with the retracted facts as drivers
//!   against the *pre-deletion* extents, marking every fact with a
//!   derivation through a deleted fact; marked facts are tombstoned,
//!   then each is checked for *remaining support* by a goal-directed
//!   join (head variables pre-bound to the candidate's values) and
//!   revived if any rule body still fires — with the revivals fed back
//!   through insertion propagation to rescue downstream casualties.
//!
//! Both directions ride on [`TupleStore`]'s logical deletion: a
//! tombstoned row keeps its arena slot and its row id, re-inserting the
//! same tuple revives that id, and `ColumnIndex` probes skip dead rows
//! — so the runtime's delta lists are plain `Vec<u32>` row ids and no
//! index is rebuilt on the maintenance path (compaction, which does
//! invalidate ids, runs only between polls once tombstones dominate).
//!
//! A budget-exhausted poll leaves the stores half-maintained; the
//! runtime remembers this and the next poll falls back to a
//! from-scratch rebuild, so exhaustion is recoverable and — for a fixed
//! operation sequence at one thread — deterministic. Work is metered
//! under `queries.incr.*` and traced as `datalog.incr.*` spans.

use crate::datalog::{head_idb, rule_num_vars, Atom, IdbStore, Pred, Program, Rule};
use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::index::ColumnIndex;
use fmt_structures::par::fan_out;
use fmt_structures::store::TupleStore;
use fmt_structures::{Elem, RelId, Structure};
use std::collections::HashMap;

/// Budget tick site label for the incremental maintenance loop.
const AT: &str = "queries.incr";

/// Polls that ran to completion (successful `poll`/`try_poll` calls).
static OBS_POLLS: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.polls");
/// Net EDB facts inserted by polls.
static OBS_INSERTED: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.inserted_facts");
/// Net EDB facts retracted by polls.
static OBS_RETRACTED: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.retracted_facts");
/// IDB facts added (first derivations and propagation revivals).
static OBS_DERIVED: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.derived_facts");
/// IDB facts tombstoned by the DRed over-deletion pass.
static OBS_OVERDELETED: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.overdeleted");
/// Over-deleted facts revived by the direct remaining-support check.
static OBS_REDERIVED: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.rederived");
/// Delta propagation rounds across all polls.
static OBS_ROUNDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.rounds");
/// From-scratch rebuilds (first poll, or recovery after exhaustion).
static OBS_REBUILDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.incr.rebuilds");

/// How one body atom is accessed by the incremental join kernel. The
/// runtime stores EDB and IDB extents uniformly as [`TupleStore`]s, so
/// unlike the batch engine there is no sorted-prefix access — bound
/// positions always probe a [`ColumnIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Access {
    /// The delta-driver atom: iterate the given row ids.
    ScanDelta,
    /// No bound positions: iterate the full live extent.
    Scan,
    /// Hash-index probe on the given bound argument positions.
    Probe(Vec<usize>),
}

/// One step of a rule plan: which body atom to join next, and how.
#[derive(Debug, Clone)]
struct Step {
    atom: usize,
    access: Access,
}

/// Key of the per-rule plan cache. Mirrors the batch engine's
/// per-(rule, pos) cache, extended with the two driverless shapes the
/// maintenance loop needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PlanKey {
    /// Delta-driven: body position `pos` iterates the delta rows.
    Driver { rule: usize, pos: usize },
    /// No driver, nothing pre-bound: the rebuild initialization pass.
    Init { rule: usize },
    /// No driver, head variables pre-bound: the DRed remaining-support
    /// check.
    Goal { rule: usize },
}

/// Greedy join order for one rule under the runtime's uniform columnar
/// extents: the delta driver (if any) first, then repeatedly the atom
/// with the most bound argument positions, breaking ties toward the
/// smallest extent, then written order — the batch planner's policy
/// with [`Access::Probe`] for every bound access.
fn plan_incr(
    rule: &Rule,
    driver: Option<usize>,
    pre_bound: &[bool],
    extent_len: &dyn Fn(&Atom) -> usize,
) -> Vec<Step> {
    let num_vars = rule_num_vars(rule);
    let mut bound = vec![false; num_vars];
    bound[..pre_bound.len()].copy_from_slice(pre_bound);
    let mut steps: Vec<Step> = Vec::with_capacity(rule.body.len());
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();

    let take = |i: usize, steps: &mut Vec<Step>, bound: &mut Vec<bool>, access: Access| {
        steps.push(Step { atom: i, access });
        for &v in &rule.body[i].args {
            bound[v as usize] = true;
        }
    };

    if let Some(d) = driver {
        take(d, &mut steps, &mut bound, Access::ScanDelta);
        remaining.retain(|&i| i != d);
    }

    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .copied()
            .max_by_key(|&i| {
                let atom = &rule.body[i];
                let bound_positions = atom.args.iter().filter(|&&v| bound[v as usize]).count();
                (
                    bound_positions,
                    std::cmp::Reverse(extent_len(atom)),
                    std::cmp::Reverse(i),
                )
            })
            .expect("remaining is nonempty");
        let atom = &rule.body[best];
        let key: Vec<usize> = (0..atom.args.len())
            .filter(|&p| bound[atom.args[p] as usize])
            .collect();
        let access = if key.is_empty() {
            Access::Scan
        } else {
            Access::Probe(key)
        };
        take(best, &mut steps, &mut bound, access);
        remaining.retain(|&i| i != best);
    }
    steps
}

/// Everything the incremental kernel needs for one rule application;
/// shared immutably across worker threads.
struct Kernel<'a> {
    rule: &'a Rule,
    plan: &'a [Step],
    edb: &'a [IdbStore],
    idb: &'a [IdbStore],
    /// Row ids for the `ScanDelta` step, indexing into the driven
    /// predicate's store (EDB or IDB).
    driver: &'a [u32],
    domain: u32,
    head_idb: usize,
}

impl<'a> Kernel<'a> {
    fn rel(&self, pred: Pred) -> &'a IdbStore {
        match pred {
            Pred::Edb(r) => &self.edb[r.0],
            Pred::Idb(j) => &self.idb[j],
        }
    }

    /// Emits every instantiation of the head under the current binding,
    /// with unbound head variables ranging over the whole domain.
    /// `emit` returns `false` to stop the whole join (the goal-directed
    /// rederivation check wants the first witness only); the kernel
    /// forwards that as `Ok(false)`.
    fn emit_head(
        &self,
        binding: &mut [Option<Elem>],
        budget: &Budget,
        emit: &mut dyn FnMut(&[Elem]) -> bool,
    ) -> BudgetResult<bool> {
        fn rec(
            k: &Kernel<'_>,
            binding: &mut [Option<Elem>],
            unbound: &[u32],
            i: usize,
            buf: &mut Vec<Elem>,
            budget: &Budget,
            emit: &mut dyn FnMut(&[Elem]) -> bool,
        ) -> BudgetResult<bool> {
            if i == unbound.len() {
                budget.tick(AT)?;
                buf.clear();
                buf.extend(
                    k.rule
                        .head
                        .args
                        .iter()
                        .map(|&v| binding[v as usize].expect("head var bound")),
                );
                return Ok(emit(buf));
            }
            let mut keep_going = true;
            for d in 0..k.domain {
                binding[unbound[i] as usize] = Some(d);
                match rec(k, binding, unbound, i + 1, buf, budget, emit) {
                    Ok(true) => {}
                    other => {
                        keep_going = false;
                        binding[unbound[i] as usize] = None;
                        return other.map(|_| keep_going);
                    }
                }
            }
            binding[unbound[i] as usize] = None;
            Ok(keep_going)
        }

        // Empty for range-restricted rules and for goal plans (where
        // every head variable is pre-bound).
        let mut unbound: Vec<u32> = self
            .rule
            .head
            .args
            .iter()
            .copied()
            .filter(|&v| binding[v as usize].is_none())
            .collect();
        unbound.sort_unstable();
        unbound.dedup();
        let mut buf = Vec::with_capacity(self.rule.head.args.len());
        rec(self, binding, &unbound, 0, &mut buf, budget, emit)
    }

    /// Binds a candidate row against the atom at plan step `step_i`,
    /// recursing into the next step on success; the binding is fully
    /// restored before returning.
    fn try_candidate(
        &self,
        step_i: usize,
        st: &TupleStore,
        row: u32,
        binding: &mut [Option<Elem>],
        budget: &Budget,
        emit: &mut dyn FnMut(&[Elem]) -> bool,
    ) -> BudgetResult<bool> {
        let atom = &self.rule.body[self.plan[step_i].atom];
        let mut touched: u128 = 0;
        let mut ok = true;
        for (i, &v) in atom.args.iter().enumerate() {
            let e = st.value(row, i);
            match binding[v as usize] {
                Some(b) if b != e => {
                    ok = false;
                    break;
                }
                Some(_) => {}
                None => {
                    binding[v as usize] = Some(e);
                    debug_assert!(
                        (v as usize) < 128,
                        "parser caps rule variables well below 128"
                    );
                    touched |= 1u128 << v;
                }
            }
        }
        let result = if ok {
            self.exec(step_i + 1, binding, budget, emit)
        } else {
            Ok(true)
        };
        while touched != 0 {
            binding[touched.trailing_zeros() as usize] = None;
            touched &= touched - 1;
        }
        result
    }

    /// Runs plan step `step_i` under the current binding, emitting head
    /// instantiations once every step is satisfied. Ticks the budget
    /// once per step entered; returns `Ok(false)` as soon as `emit`
    /// asks to stop.
    fn exec(
        &self,
        step_i: usize,
        binding: &mut [Option<Elem>],
        budget: &Budget,
        emit: &mut dyn FnMut(&[Elem]) -> bool,
    ) -> BudgetResult<bool> {
        budget.tick(AT)?;
        if step_i == self.plan.len() {
            return self.emit_head(binding, budget, emit);
        }
        let step = &self.plan[step_i];
        let atom = &self.rule.body[step.atom];
        let st = &self.rel(atom.pred).store;
        match &step.access {
            Access::ScanDelta => {
                for &row in self.driver {
                    if !self.try_candidate(step_i, st, row, binding, budget, emit)? {
                        return Ok(false);
                    }
                }
            }
            Access::Scan => {
                for row in 0..st.rows32() {
                    if !st.is_live(row) {
                        continue;
                    }
                    if !self.try_candidate(step_i, st, row, binding, budget, emit)? {
                        return Ok(false);
                    }
                }
            }
            Access::Probe(key) => {
                let mut kv = Vec::with_capacity(key.len());
                kv.extend(key.iter().map(|&p| {
                    binding[atom.args[p] as usize].expect("planned key position is bound")
                }));
                let idx = self.rel(atom.pred).index(key);
                // The probe iterator borrows the store; collect row ids
                // is avoided by re-probing lazily — but the iterator
                // itself is cheap, so walk it directly.
                for row in idx.probe(st, &kv) {
                    if !self.try_candidate(step_i, st, row, binding, budget, emit)? {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }
}

/// What one [`DatalogRuntime::poll`] did, in fact counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollStats {
    /// Net EDB facts added (insertions of absent tuples).
    pub inserted: u64,
    /// Net EDB facts removed (retractions of present tuples).
    pub retracted: u64,
    /// IDB facts added: first derivations plus propagation revivals.
    pub derived: u64,
    /// IDB facts tombstoned by the DRed over-deletion pass.
    pub overdeleted: u64,
    /// Over-deleted facts revived by the direct support check.
    pub rederived: u64,
    /// Delta propagation rounds run.
    pub rounds: u64,
    /// `true` if this poll recomputed from scratch (first poll, or
    /// recovery after a budget-exhausted poll).
    pub rebuilt: bool,
}

/// One queued update: `insert` flag, relation, tuple.
type PendingOp = (bool, RelId, Vec<Elem>);

/// The incremental runtime does not maintain programs with negation:
/// DRed (delete–rederive) under stratified negation needs per-stratum
/// over-deletion with *sign-flipped* deltas, which is explicitly out of
/// scope here (see `docs/incremental.md`). [`DatalogRuntime::new`]
/// rejects such programs with this typed error instead of panicking —
/// use the batch engines, which evaluate stratum by stratum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedNegation {
    /// Rule index of the first negated atom.
    pub rule: usize,
    /// Body-atom index of that atom within the rule.
    pub atom: usize,
    /// Name of the negated predicate.
    pub pred: String,
}

impl std::fmt::Display for UnsupportedNegation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "incremental maintenance does not support negation: rule {} negates {}",
            self.rule, self.pred
        )
    }
}

impl std::error::Error for UnsupportedNegation {}

/// A long-lived incrementally-maintained materialization of a Datalog
/// program over a mutable fact base.
///
/// ```
/// use fmt_queries::datalog::Program;
/// use fmt_queries::incremental::DatalogRuntime;
/// use fmt_structures::RelId;
///
/// let mut rt = DatalogRuntime::new(Program::transitive_closure(), 4).unwrap();
/// let e = RelId(0);
/// rt.insert(e, &[0, 1]);
/// rt.insert(e, &[1, 2]);
/// rt.poll();
/// let tc = rt.program().idb("tc").unwrap();
/// assert!(rt.query(tc).contains(&[0, 2]));
/// rt.retract(e, &[1, 2]);
/// rt.poll();
/// assert!(!rt.query(tc).contains(&[0, 2]));
/// ```
#[derive(Debug)]
pub struct DatalogRuntime {
    program: Program,
    domain: u32,
    threads: usize,
    /// One columnar extent per signature relation, indexed by `RelId.0`.
    edb: Vec<IdbStore>,
    /// One columnar extent per IDB predicate.
    idb: Vec<IdbStore>,
    /// Rule indices grouped by head IDB (the rederivation worklist).
    rules_by_head: Vec<Vec<usize>>,
    plans: Vec<Vec<Step>>,
    plan_of: HashMap<PlanKey, usize>,
    pending: Vec<PendingOp>,
    /// `true` while the materialization may not match the fact base: on
    /// creation, and after a budget-exhausted poll left the stores
    /// half-maintained. The next poll rebuilds from scratch.
    dirty: bool,
}

impl DatalogRuntime {
    /// An empty runtime for `program` over the domain `{0, …, n−1}`
    /// (the domain matters because unbound head variables range over
    /// it, exactly as in the batch engines). Programs with negated
    /// atoms are rejected with [`UnsupportedNegation`].
    pub fn new(program: Program, domain_size: u32) -> Result<DatalogRuntime, UnsupportedNegation> {
        for (ri, rule) in program.rules().iter().enumerate() {
            for (ai, atom) in rule.body.iter().enumerate() {
                if atom.negated {
                    let pred = match atom.pred {
                        Pred::Idb(j) => program.idb_info(j).0.to_owned(),
                        Pred::Edb(r) => program.signature().relation_name(r).to_owned(),
                    };
                    return Err(UnsupportedNegation {
                        rule: ri,
                        atom: ai,
                        pred,
                    });
                }
            }
        }
        let sig = program.signature().clone();
        let edb = sig
            .relations()
            .map(|(_, _, arity)| IdbStore::new(arity))
            .collect();
        let idb = (0..program.num_idbs())
            .map(|j| IdbStore::new(program.idb_info(j).1))
            .collect();
        let mut rules_by_head = vec![Vec::new(); program.num_idbs()];
        for (ri, rule) in program.rules().iter().enumerate() {
            rules_by_head[head_idb(rule)].push(ri);
        }
        Ok(DatalogRuntime {
            program,
            domain: domain_size,
            threads: 1,
            edb,
            idb,
            rules_by_head,
            plans: Vec::new(),
            plan_of: HashMap::new(),
            pending: Vec::new(),
            dirty: true,
        })
    }

    /// A runtime seeded with every fact of `s` (queued as pending
    /// insertions — call [`DatalogRuntime::poll`] to materialize).
    /// Programs with negated atoms are rejected with
    /// [`UnsupportedNegation`].
    pub fn from_structure(
        program: Program,
        s: &Structure,
    ) -> Result<DatalogRuntime, UnsupportedNegation> {
        assert_eq!(
            program.signature(),
            s.signature(),
            "program and structure must share a signature"
        );
        let mut rt = DatalogRuntime::new(program, s.size())?;
        for (r, _, _) in s.signature().relations() {
            for t in s.rel(r).iter() {
                rt.insert(r, t);
            }
        }
        Ok(rt)
    }

    /// The program being maintained.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The domain size `n` fixed at construction.
    pub fn domain_size(&self) -> u32 {
        self.domain
    }

    /// Worker threads used by insertion propagation (1 = inline).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread count (0 is clamped to 1). The result of
    /// a poll is deterministic for any thread count; budget exhaustion
    /// points are deterministic at one thread.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Queued updates not yet applied by a poll.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// `true` if the next poll will rebuild from scratch instead of
    /// maintaining incrementally (freshly created, or a previous poll
    /// exhausted its budget mid-maintenance).
    pub fn needs_rebuild(&self) -> bool {
        self.dirty
    }

    /// Queues insertion of `t` into EDB relation `rel`.
    ///
    /// # Panics
    /// Panics if the arity mismatches or a value is outside the domain.
    pub fn insert(&mut self, rel: RelId, t: &[Elem]) {
        self.check_fact(rel, t);
        self.pending.push((true, rel, t.to_vec()));
    }

    /// Queues retraction of `t` from EDB relation `rel`.
    ///
    /// # Panics
    /// Panics if the arity mismatches or a value is outside the domain.
    pub fn retract(&mut self, rel: RelId, t: &[Elem]) {
        self.check_fact(rel, t);
        self.pending.push((false, rel, t.to_vec()));
    }

    fn check_fact(&self, rel: RelId, t: &[Elem]) {
        assert_eq!(
            t.len(),
            self.program.signature().arity(rel),
            "tuple arity must match relation {}",
            self.program.signature().relation_name(rel)
        );
        assert!(
            t.iter().all(|&v| v < self.domain),
            "tuple values must lie in the domain 0..{}",
            self.domain
        );
    }

    /// The current extent of IDB predicate `idb` (as of the last
    /// successful poll; pending updates are not reflected). Live rows
    /// only under [`TupleStore::iter`]/[`PartialEq`]; tombstoned rows
    /// may linger in the arenas until compaction.
    pub fn query(&self, idb: usize) -> &TupleStore {
        &self.idb[idb].store
    }

    /// The current extent of EDB relation `rel` (as of the last
    /// successful poll).
    pub fn edb(&self, rel: RelId) -> &TupleStore {
        &self.edb[rel.0].store
    }

    /// Applies all pending updates and restores the fixpoint,
    /// unbudgeted. Returns what was done.
    pub fn poll(&mut self) -> PollStats {
        self.try_poll(&Budget::unlimited())
            .expect("unlimited budget cannot exhaust")
    }

    /// Applies all pending updates and restores the fixpoint under
    /// `budget`. On exhaustion the stores may be half-maintained: the
    /// pending queue is kept, [`DatalogRuntime::needs_rebuild`] turns
    /// `true`, and the next poll recovers with a from-scratch rebuild.
    pub fn try_poll(&mut self, budget: &Budget) -> BudgetResult<PollStats> {
        let mut span = fmt_obs::trace_span!("datalog.incr.poll", pending = self.pending.len());
        // Net effect of the queue: the last op per (relation, tuple)
        // wins, in first-occurrence order for determinism.
        let mut order: Vec<(RelId, Vec<Elem>)> = Vec::new();
        let mut last: HashMap<(usize, Vec<Elem>), bool> = HashMap::new();
        for (add, rel, t) in &self.pending {
            let key = (rel.0, t.clone());
            if !last.contains_key(&key) {
                order.push((*rel, t.clone()));
            }
            last.insert(key, *add);
        }

        let mut stats = PollStats::default();
        let was_dirty = self.dirty;
        self.dirty = true; // until this poll completes
        if was_dirty {
            self.rebuild(&order, &last, budget, &mut stats)?;
        } else {
            self.maintain(&order, &last, budget, &mut stats)?;
        }
        self.pending.clear();
        self.dirty = false;
        for r in self.edb.iter_mut().chain(self.idb.iter_mut()) {
            compact_if_mostly_dead(r);
        }
        OBS_POLLS.incr();
        OBS_INSERTED.add(stats.inserted);
        OBS_RETRACTED.add(stats.retracted);
        span.record_field("inserted", stats.inserted);
        span.record_field("retracted", stats.retracted);
        span.record_field("derived", stats.derived);
        span.record_field("overdeleted", stats.overdeleted);
        span.record_field("rounds", stats.rounds);
        Ok(stats)
    }

    /// From-scratch path: apply the net updates to the EDB, clear the
    /// IDB, run the batch-style initialization pass, then propagate.
    fn rebuild(
        &mut self,
        order: &[(RelId, Vec<Elem>)],
        last: &HashMap<(usize, Vec<Elem>), bool>,
        budget: &Budget,
        stats: &mut PollStats,
    ) -> BudgetResult<()> {
        OBS_REBUILDS.incr();
        stats.rebuilt = true;
        for (rel, t) in order {
            if last[&(rel.0, t.clone())] {
                if self.edb[rel.0].store.push_if_new(t).is_some() {
                    stats.inserted += 1;
                }
            } else if self.edb[rel.0].store.remove(t).is_some() {
                stats.retracted += 1;
            }
        }
        for r in &mut self.edb {
            r.extend_indexes();
        }
        for (j, r) in self.idb.iter_mut().enumerate() {
            *r = IdbStore::new(self.program.idb_info(j).1);
        }
        // Goal/driver plans survive (access shapes stay valid); any
        // index they reference is re-created lazily by ensure_indexes.
        let span = fmt_obs::trace_span!("datalog.incr.init");
        let mut idb_delta: Vec<Vec<u32>> = vec![Vec::new(); self.idb.len()];
        for ri in 0..self.program.rules().len() {
            let pi = self.plan_for(PlanKey::Init { rule: ri });
            let rule = &self.program.rules()[ri];
            let kernel = Kernel {
                rule,
                plan: &self.plans[pi],
                edb: &self.edb,
                idb: &self.idb,
                driver: &[],
                domain: self.domain,
                head_idb: head_idb(rule),
            };
            let h = kernel.head_idb;
            let mut staged: Vec<Vec<Elem>> = Vec::new();
            let mut binding = vec![None; rule_num_vars(rule)];
            kernel.exec(0, &mut binding, budget, &mut |t| {
                staged.push(t.to_vec());
                true
            })?;
            for t in staged {
                if let Some(row) = self.idb[h].store.push_if_new(&t) {
                    idb_delta[h].push(row);
                    stats.derived += 1;
                }
            }
        }
        for r in &mut self.idb {
            r.extend_indexes();
        }
        drop(span);
        OBS_DERIVED.add(stats.derived);
        let edb_delta = vec![Vec::new(); self.edb.len()];
        // The init pass joined full EDB extents already, so only IDB
        // deltas need driving — but rules with *only* EDB bodies fired
        // completely during init too, which is exactly why the EDB
        // delta is empty here.
        self.propagate(edb_delta, idb_delta, budget, stats)
    }

    /// Incremental path: DRed retraction (overdelete, tombstone,
    /// rederive), then delta-rewritten insertion, then one shared
    /// propagation to the new fixpoint.
    fn maintain(
        &mut self,
        order: &[(RelId, Vec<Elem>)],
        last: &HashMap<(usize, Vec<Elem>), bool>,
        budget: &Budget,
        stats: &mut PollStats,
    ) -> BudgetResult<()> {
        let mut to_retract: Vec<(RelId, Vec<Elem>)> = Vec::new();
        let mut to_insert: Vec<(RelId, Vec<Elem>)> = Vec::new();
        for (rel, t) in order {
            let add = last[&(rel.0, t.clone())];
            let present = self.edb[rel.0].store.contains(t);
            if add && !present {
                to_insert.push((*rel, t.clone()));
            } else if !add && present {
                to_retract.push((*rel, t.clone()));
            }
        }

        let mut revived_delta: Vec<Vec<u32>> = vec![Vec::new(); self.idb.len()];
        if !to_retract.is_empty() {
            let over = self.overdelete(&to_retract, budget, stats)?;
            self.rederive(&over, &mut revived_delta, budget, stats)?;
        }

        let mut edb_delta: Vec<Vec<u32>> = vec![Vec::new(); self.edb.len()];
        if !to_insert.is_empty() {
            let span = fmt_obs::trace_span!("datalog.incr.insert", facts = to_insert.len());
            for (rel, t) in &to_insert {
                if let Some(row) = self.edb[rel.0].store.push_if_new(t) {
                    edb_delta[rel.0].push(row);
                    stats.inserted += 1;
                }
            }
            for r in &mut self.edb {
                r.extend_indexes();
            }
            drop(span);
        }
        self.propagate(edb_delta, revived_delta, budget, stats)
    }

    /// DRed phase one: semi-naive over-deletion against the
    /// pre-deletion extents, then tombstoning. Returns the marked rows
    /// per IDB, in discovery order.
    fn overdelete(
        &mut self,
        to_retract: &[(RelId, Vec<Elem>)],
        budget: &Budget,
        stats: &mut PollStats,
    ) -> BudgetResult<Vec<Vec<u32>>> {
        let mut span = fmt_obs::trace_span!("datalog.incr.retract", facts = to_retract.len());
        let mut edb_delta: Vec<Vec<u32>> = vec![Vec::new(); self.edb.len()];
        for (rel, t) in to_retract {
            let row = self.edb[rel.0]
                .store
                .find(t)
                .expect("to_retract holds present tuples");
            edb_delta[rel.0].push(row);
        }
        let mut over: Vec<Vec<u32>> = vec![Vec::new(); self.idb.len()];
        let mut marked: Vec<Vec<bool>> = self
            .idb
            .iter()
            .map(|r| vec![false; r.store.rows32() as usize])
            .collect();
        let mut idb_delta: Vec<Vec<u32>> = vec![Vec::new(); self.idb.len()];
        loop {
            stats.rounds += 1;
            OBS_ROUNDS.incr();
            let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
            for (ri, rule) in self.program.rules().iter().enumerate() {
                for (pos, atom) in rule.body.iter().enumerate() {
                    let nonempty = match atom.pred {
                        Pred::Edb(r) => !edb_delta[r.0].is_empty(),
                        Pred::Idb(j) => !idb_delta[j].is_empty(),
                    };
                    if nonempty {
                        jobs.push((ri, pos, 0));
                    }
                }
            }
            if jobs.is_empty() {
                break;
            }
            for job in &mut jobs {
                job.2 = self.plan_for(PlanKey::Driver {
                    rule: job.0,
                    pos: job.1,
                });
            }
            let mut next_delta: Vec<Vec<u32>> = vec![Vec::new(); self.idb.len()];
            for &(ri, pos, pi) in &jobs {
                let rule = &self.program.rules()[ri];
                let driver = match rule.body[pos].pred {
                    Pred::Edb(r) => &edb_delta[r.0],
                    Pred::Idb(j) => &idb_delta[j],
                };
                let kernel = Kernel {
                    rule,
                    plan: &self.plans[pi],
                    edb: &self.edb,
                    idb: &self.idb,
                    driver,
                    domain: self.domain,
                    head_idb: head_idb(rule),
                };
                let h = kernel.head_idb;
                let head_store = &self.idb[h].store;
                let marks = &mut marked[h];
                let fresh = &mut next_delta[h];
                let mut binding = vec![None; rule_num_vars(rule)];
                kernel.exec(0, &mut binding, budget, &mut |t| {
                    // Every emitted head had a derivation over the old
                    // extents, so it is in the old fixpoint; mark it
                    // for deletion once.
                    if let Some(row) = head_store.find(t) {
                        if !marks[row as usize] {
                            marks[row as usize] = true;
                            fresh.push(row);
                        }
                    }
                    true
                })?;
            }
            for r in &mut edb_delta {
                r.clear();
            }
            let mut any = false;
            for (j, fresh) in next_delta.iter_mut().enumerate() {
                any |= !fresh.is_empty();
                over[j].extend_from_slice(fresh);
            }
            idb_delta = next_delta;
            if !any {
                break;
            }
        }
        // Mutate only now that the over-deletion fixpoint is done: the
        // passes above must join against the *pre-deletion* extents.
        for (rel, t) in to_retract {
            if self.edb[rel.0].store.remove(t).is_some() {
                stats.retracted += 1;
            }
        }
        for (j, rows) in over.iter().enumerate() {
            for &row in rows {
                self.idb[j].store.remove_row(row);
            }
            stats.overdeleted += rows.len() as u64;
        }
        OBS_OVERDELETED.add(stats.overdeleted);
        span.record_field("overdeleted", stats.overdeleted);
        Ok(over)
    }

    /// DRed phase two: for every over-deleted fact, a goal-directed
    /// join (head variables pre-bound) asks whether any rule body still
    /// fires over the post-deletion extents; survivors are revived.
    /// Facts rescued only *through* a survivor are caught later by
    /// propagation, with the revivals as deltas.
    fn rederive(
        &mut self,
        over: &[Vec<u32>],
        revived_delta: &mut [Vec<u32>],
        budget: &Budget,
        stats: &mut PollStats,
    ) -> BudgetResult<()> {
        let mut span = fmt_obs::trace_span!(
            "datalog.incr.rederive",
            candidates = over.iter().map(Vec::len).sum::<usize>()
        );
        let mut tuple = Vec::new();
        for (j, rows) in over.iter().enumerate() {
            for &row in rows {
                self.idb[j].store.read_row_into(row, &mut tuple);
                let t = std::mem::take(&mut tuple);
                if self.derivable(j, &t, budget)? {
                    let revived = self.idb[j]
                        .store
                        .push_if_new(&t)
                        .expect("over-deleted rows are dead, so re-insertion revives");
                    debug_assert_eq!(revived, row, "revival returns the tombstoned row id");
                    revived_delta[j].push(revived);
                    stats.rederived += 1;
                }
                tuple = t;
            }
        }
        OBS_REDERIVED.add(stats.rederived);
        span.record_field("rederived", stats.rederived);
        Ok(())
    }

    /// `true` iff some rule with head `idb` derives `t` from the
    /// current live extents (the remaining-support test of DRed).
    fn derivable(&mut self, idb: usize, t: &[Elem], budget: &Budget) -> BudgetResult<bool> {
        for ri_i in 0..self.rules_by_head[idb].len() {
            let ri = self.rules_by_head[idb][ri_i];
            let pi = self.plan_for(PlanKey::Goal { rule: ri });
            let rule = &self.program.rules()[ri];
            let mut binding = vec![None; rule_num_vars(rule)];
            let mut consistent = true;
            for (&v, &e) in rule.head.args.iter().zip(t.iter()) {
                match binding[v as usize] {
                    Some(b) if b != e => {
                        consistent = false;
                        break;
                    }
                    _ => binding[v as usize] = Some(e),
                }
            }
            if !consistent {
                continue;
            }
            let kernel = Kernel {
                rule,
                plan: &self.plans[pi],
                edb: &self.edb,
                idb: &self.idb,
                driver: &[],
                domain: self.domain,
                head_idb: idb,
            };
            let mut found = false;
            kernel.exec(0, &mut binding, budget, &mut |_| {
                found = true;
                false // first witness suffices
            })?;
            if found {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Semi-naive propagation of the delta-rewritten program: every
    /// `(rule, delta position)` with a nonempty delta becomes a job
    /// (EDB deltas drive the first round only), jobs fan out across
    /// worker threads, and emissions merge deterministically in job
    /// order. New and revived rows form the next round's deltas.
    fn propagate(
        &mut self,
        mut edb_delta: Vec<Vec<u32>>,
        mut idb_delta: Vec<Vec<u32>>,
        budget: &Budget,
        stats: &mut PollStats,
    ) -> BudgetResult<()> {
        let k = self.idb.len();
        while edb_delta.iter().any(|d| !d.is_empty()) || idb_delta.iter().any(|d| !d.is_empty()) {
            stats.rounds += 1;
            OBS_ROUNDS.incr();
            let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
            for (ri, rule) in self.program.rules().iter().enumerate() {
                for (pos, atom) in rule.body.iter().enumerate() {
                    let nonempty = match atom.pred {
                        Pred::Edb(r) => !edb_delta[r.0].is_empty(),
                        Pred::Idb(j) => !idb_delta[j].is_empty(),
                    };
                    if nonempty {
                        jobs.push((ri, pos, 0));
                    }
                }
            }
            if jobs.is_empty() {
                break;
            }
            for job in &mut jobs {
                job.2 = self.plan_for(PlanKey::Driver {
                    rule: job.0,
                    pos: job.1,
                });
            }

            // Split each job's delta into contiguous chunks so big
            // rounds spread across workers; results still merge in
            // item order, so any thread count computes the same store.
            let total: usize = jobs
                .iter()
                .map(
                    |&(ri, pos, _)| match self.program.rules()[ri].body[pos].pred {
                        Pred::Edb(r) => edb_delta[r.0].len(),
                        Pred::Idb(j) => idb_delta[j].len(),
                    },
                )
                .sum();
            let nchunks = if self.threads == 1 || total < 512 {
                1
            } else {
                self.threads
            };
            let mut items: Vec<(usize, &[u32])> = Vec::new();
            for (ji, &(ri, pos, _)) in jobs.iter().enumerate() {
                let delta: &[u32] = match self.program.rules()[ri].body[pos].pred {
                    Pred::Edb(r) => &edb_delta[r.0],
                    Pred::Idb(j) => &idb_delta[j],
                };
                let chunk = delta.len().div_ceil(nchunks).max(1);
                items.extend(delta.chunks(chunk).map(|c| (ji, c)));
            }

            let span = fmt_obs::trace_span!("datalog.incr.round", jobs = jobs.len());
            let program = &self.program;
            let plans = &self.plans;
            let edb = &self.edb;
            let idb = &self.idb;
            let domain = self.domain;
            let results = fan_out(self.threads, &items, |chunk| {
                let mut bufs: Vec<Vec<Elem>> = vec![Vec::new(); k];
                let mut counts: Vec<usize> = vec![0; k];
                for &(ji, driver) in chunk {
                    let (ri, _, pi) = jobs[ji];
                    let rule = &program.rules()[ri];
                    let kernel = Kernel {
                        rule,
                        plan: &plans[pi],
                        edb,
                        idb,
                        driver,
                        domain,
                        head_idb: head_idb(rule),
                    };
                    let h = kernel.head_idb;
                    let mut binding = vec![None; rule_num_vars(rule)];
                    kernel.exec(0, &mut binding, budget, &mut |t| {
                        bufs[h].extend_from_slice(t);
                        counts[h] += 1;
                        true
                    })?;
                }
                Ok((bufs, counts))
            });
            drop(span);

            for d in &mut edb_delta {
                d.clear();
            }
            let mut next_delta: Vec<Vec<u32>> = vec![Vec::new(); k];
            for chunk_result in results {
                let (bufs, counts) = chunk_result?;
                for (j, (buf, &cnt)) in bufs.iter().zip(counts.iter()).enumerate() {
                    let a = self.program.idb_info(j).1;
                    for i in 0..cnt {
                        if let Some(row) = self.idb[j].store.push_if_new(&buf[i * a..(i + 1) * a]) {
                            next_delta[j].push(row);
                            stats.derived += 1;
                        }
                    }
                }
            }
            for r in &mut self.idb {
                r.extend_indexes();
            }
            OBS_DERIVED.add(next_delta.iter().map(|d| d.len() as u64).sum());
            idb_delta = next_delta;
        }
        Ok(())
    }

    /// Plan-cache lookup, planning (and building the indexes the plan
    /// probes) on first sight — the incremental counterpart of the
    /// batch engine's per-(rule, pos) cache, extended with init and
    /// goal shapes.
    fn plan_for(&mut self, key: PlanKey) -> usize {
        if let Some(&pi) = self.plan_of.get(&key) {
            self.ensure_indexes(pi, key);
            return pi;
        }
        let (ri, driver) = match key {
            PlanKey::Driver { rule, pos } => (rule, Some(pos)),
            PlanKey::Init { rule } | PlanKey::Goal { rule } => (rule, None),
        };
        let rule = &self.program.rules()[ri];
        let mut pre_bound = vec![false; rule_num_vars(rule)];
        if matches!(key, PlanKey::Goal { .. }) {
            for &v in &rule.head.args {
                pre_bound[v as usize] = true;
            }
        }
        let edb = &self.edb;
        let idb = &self.idb;
        let extent_len = |atom: &Atom| -> usize {
            match atom.pred {
                Pred::Edb(r) => edb[r.0].store.len(),
                Pred::Idb(j) => idb[j].store.len(),
            }
        };
        let plan = plan_incr(rule, driver, &pre_bound, &extent_len);
        self.plans.push(plan);
        let pi = self.plans.len() - 1;
        self.plan_of.insert(key, pi);
        self.ensure_indexes(pi, key);
        pi
    }

    /// Builds (or catches up) every index a plan probes. Cheap when
    /// current: `ColumnIndex::extend` is a no-op past `built_upto`.
    fn ensure_indexes(&mut self, pi: usize, key: PlanKey) {
        let ri = match key {
            PlanKey::Driver { rule, .. } | PlanKey::Init { rule } | PlanKey::Goal { rule } => rule,
        };
        for si in 0..self.plans[pi].len() {
            let Access::Probe(ref k) = self.plans[pi][si].access else {
                continue;
            };
            let k = k.clone();
            let atom_i = self.plans[pi][si].atom;
            let rel = match self.program.rules()[ri].body[atom_i].pred {
                Pred::Edb(r) => &mut self.edb[r.0],
                Pred::Idb(j) => &mut self.idb[j],
            };
            rel.ensure_index(&k);
            rel.extend_indexes();
        }
    }
}

/// Compacts a store once tombstones dominate (≥ 32 dead rows and at
/// least half the arena), rebuilding its indexes from scratch — row
/// ids move, so this runs only between polls, never while delta lists
/// are alive.
fn compact_if_mostly_dead(rel: &mut IdbStore) {
    let dead = rel.store.tombstones();
    if dead < 32 || dead * 2 < rel.store.rows32() as usize {
        return;
    }
    let _ = rel.store.compact();
    for (key, idx) in &mut rel.indexes {
        *idx = ColumnIndex::new(key);
        idx.extend(&rel.store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    fn e() -> RelId {
        RelId(0)
    }

    /// From-scratch reference: the batch engine on the runtime's
    /// current EDB.
    fn scratch(rt: &DatalogRuntime) -> Vec<TupleStore> {
        let sig = rt.program().signature().clone();
        let mut b = fmt_structures::StructureBuilder::new(sig.clone(), rt.domain_size());
        for (r, _, _) in sig.relations() {
            for t in rt.edb(r).iter() {
                b.add(r, &t).unwrap();
            }
        }
        let out = rt.program().eval_seminaive(&b.build().unwrap());
        (0..rt.program().num_idbs())
            .map(|j| out.relation(j).clone())
            .collect()
    }

    fn assert_matches_scratch(rt: &DatalogRuntime) {
        let want = scratch(rt);
        for (j, w) in want.iter().enumerate() {
            assert_eq!(
                rt.query(j),
                w,
                "IDB {} diverged from scratch",
                rt.program().idb_info(j).0
            );
        }
    }

    #[test]
    fn insertions_reach_the_batch_fixpoint() {
        let mut rt = DatalogRuntime::new(Program::transitive_closure(), 6).unwrap();
        for u in 0..5 {
            rt.insert(e(), &[u, u + 1]);
        }
        let stats = rt.poll();
        assert!(stats.rebuilt, "first poll rebuilds");
        assert_matches_scratch(&rt);
        let tc = rt.program().idb("tc").unwrap();
        assert_eq!(rt.query(tc).len(), 15);

        // Steady state: a single appended edge extends the closure.
        rt.insert(e(), &[3, 0]);
        let stats = rt.poll();
        assert!(!stats.rebuilt);
        assert!(stats.derived > 0);
        assert_matches_scratch(&rt);
    }

    #[test]
    fn retraction_runs_dred_and_matches_scratch() {
        let mut rt = DatalogRuntime::new(Program::transitive_closure(), 6).unwrap();
        for u in 0..5 {
            rt.insert(e(), &[u, u + 1]);
        }
        rt.poll();
        rt.retract(e(), &[2, 3]);
        let stats = rt.poll();
        assert!(stats.overdeleted > 0);
        assert_matches_scratch(&rt);
        let tc = rt.program().idb("tc").unwrap();
        assert!(!rt.query(tc).contains(&[0, 5]));
        assert!(rt.query(tc).contains(&[0, 2]));
        assert!(rt.query(tc).contains(&[3, 5]));
    }

    #[test]
    fn rederivation_revives_surviving_support() {
        // Two parallel paths 0→1→3 and 0→2→3: retracting one leaves
        // tc(0,3) derivable through the other.
        let mut rt = DatalogRuntime::new(Program::transitive_closure(), 4).unwrap();
        for &(u, v) in &[(0, 1), (1, 3), (0, 2), (2, 3)] {
            rt.insert(e(), &[u, v]);
        }
        rt.poll();
        rt.retract(e(), &[1, 3]);
        let stats = rt.poll();
        assert!(stats.rederived > 0, "tc(0,3) must be rederived");
        assert_matches_scratch(&rt);
        let tc = rt.program().idb("tc").unwrap();
        assert!(rt.query(tc).contains(&[0, 3]));
    }

    #[test]
    fn same_generation_with_unbound_head_vars_maintains() {
        let s = builders::full_binary_tree(3);
        let mut rt = DatalogRuntime::from_structure(Program::same_generation(), &s).unwrap();
        rt.poll();
        assert_matches_scratch(&rt);
        // Retract one child edge; sg(x,x) facts must survive (they
        // have a bodiless rule as remaining support).
        let edge: Vec<Elem> = s.rel(e()).iter().next().unwrap().to_vec();
        rt.retract(e(), &edge);
        rt.poll();
        assert_matches_scratch(&rt);
        let sg = rt.program().idb("sg").unwrap();
        assert!(rt.query(sg).contains(&[2, 2]));
    }

    #[test]
    fn retract_everything_drains_idbs() {
        let mut rt = DatalogRuntime::new(Program::transitive_closure(), 8).unwrap();
        for u in 0..7 {
            rt.insert(e(), &[u, u + 1]);
        }
        rt.poll();
        for u in 0..7 {
            rt.retract(e(), &[u, u + 1]);
        }
        rt.poll();
        let tc = rt.program().idb("tc").unwrap();
        assert!(rt.query(tc).is_empty());
        assert_matches_scratch(&rt);
    }

    #[test]
    fn batched_insert_retract_nets_out() {
        let mut rt = DatalogRuntime::new(Program::transitive_closure(), 4).unwrap();
        rt.insert(e(), &[0, 1]);
        rt.poll();
        // Insert+retract of the same tuple in one batch: last op wins.
        rt.insert(e(), &[1, 2]);
        rt.retract(e(), &[1, 2]);
        let stats = rt.poll();
        assert_eq!(stats.inserted, 0);
        assert_eq!(stats.retracted, 0);
        assert_matches_scratch(&rt);
    }

    #[test]
    fn threads_agree() {
        let mut a = DatalogRuntime::new(Program::same_generation(), 7).unwrap();
        let mut b = DatalogRuntime::new(Program::same_generation(), 7).unwrap();
        b.set_threads(3);
        let s = builders::full_binary_tree(2);
        for t in s.rel(e()).iter() {
            a.insert(e(), t);
            b.insert(e(), t);
        }
        a.poll();
        b.poll();
        for j in 0..a.program().num_idbs() {
            assert_eq!(a.query(j), b.query(j));
        }
    }

    #[test]
    fn exhausted_poll_recovers_by_rebuilding() {
        let mut rt = DatalogRuntime::new(Program::transitive_closure(), 6).unwrap();
        for u in 0..5 {
            rt.insert(e(), &[u, u + 1]);
        }
        rt.poll();
        rt.retract(e(), &[2, 3]);
        rt.insert(e(), &[0, 3]);
        let err = rt
            .try_poll(&Budget::with_fuel(3))
            .expect_err("3 fuel cannot maintain");
        assert_eq!(err.spent, 4);
        assert!(rt.needs_rebuild());
        assert_eq!(rt.pending_ops(), 2, "pending ops survive exhaustion");
        let stats = rt.poll();
        assert!(stats.rebuilt, "recovery rebuilds from scratch");
        assert_matches_scratch(&rt);
    }

    #[test]
    fn deterministic_exhaustion_at_one_thread() {
        let run = || {
            let mut rt = DatalogRuntime::new(Program::transitive_closure(), 6).unwrap();
            for u in 0..5 {
                rt.insert(e(), &[u, u + 1]);
            }
            match rt.try_poll(&Budget::with_fuel(40)) {
                Ok(stats) => format!("ok:{stats:?}"),
                Err(ex) => format!("exhausted:{}:{}", ex.spent, ex.at),
            }
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn compaction_triggers_and_preserves_the_extent() {
        let mut rt = DatalogRuntime::new(Program::transitive_closure(), 100).unwrap();
        for u in 0..99 {
            rt.insert(e(), &[u, u + 1]);
        }
        rt.poll();
        for u in 0..98 {
            rt.retract(e(), &[u, u + 1]);
        }
        rt.poll();
        let tc = rt.program().idb("tc").unwrap();
        assert_eq!(rt.query(tc).len(), 1);
        assert_eq!(
            rt.query(tc).tombstones(),
            0,
            "a mostly-dead store must have been compacted"
        );
        assert_matches_scratch(&rt);
        rt.insert(e(), &[0, 1]);
        rt.poll();
        assert_matches_scratch(&rt);
    }

    #[test]
    fn nullary_idbs_toggle() {
        let sig = fmt_structures::Signature::graph();
        let prog = Program::parse(&sig, "hit :- e(x, y).").unwrap();
        let hit = prog.idb("hit").unwrap();
        let mut rt = DatalogRuntime::new(prog, 3).unwrap();
        rt.poll();
        assert!(rt.query(hit).is_empty());
        rt.insert(e(), &[0, 1]);
        rt.poll();
        assert!(rt.query(hit).contains(&[]));
        rt.retract(e(), &[0, 1]);
        rt.poll();
        assert!(rt.query(hit).is_empty());
    }
}
