//! FO interpretations: defining one structure inside another.
//!
//! The paper's reduction tricks are *FO-definable transformations* of
//! structures — "the following query is easily definable: for each
//! element in the order, put an edge to its 2nd successor; …". An
//! [`Interpretation`] packages such a transformation: one FO query per
//! target relation (over the source signature), evaluated to build the
//! target structure on the same domain. Because every component is FO,
//! composing an interpretation with an FO sentence yields an FO
//! sentence — which is exactly why the tricks transfer
//! inexpressibility.

use fmt_eval::relalg;
use fmt_logic::Query;
use fmt_structures::{Signature, Structure, StructureBuilder};
use std::sync::Arc;

/// A (one-dimensional, domain-preserving) FO interpretation from
/// σ-structures to τ-structures: for each τ-relation of arity `k`, a
/// k-ary FO query over σ.
#[derive(Debug, Clone)]
pub struct Interpretation {
    source: Arc<Signature>,
    target: Arc<Signature>,
    defs: Vec<Query>,
}

impl Interpretation {
    /// Builds an interpretation. `defs[i]` must be a query over
    /// `source` whose arity matches the arity of the `i`-th relation of
    /// `target`; `target` must be constant-free.
    pub fn new(
        source: Arc<Signature>,
        target: Arc<Signature>,
        defs: Vec<Query>,
    ) -> Result<Interpretation, String> {
        if target.num_constants() != 0 {
            return Err("target signature must be constant-free".into());
        }
        if defs.len() != target.num_relations() {
            return Err(format!(
                "expected {} defining queries, got {}",
                target.num_relations(),
                defs.len()
            ));
        }
        for ((r, name, arity), q) in target.relations().zip(defs.iter()) {
            let _ = r;
            if q.signature() != &source {
                return Err(format!(
                    "defining query for {name} is over the wrong signature"
                ));
            }
            if q.arity() != arity {
                return Err(format!(
                    "defining query for {name} has arity {}, relation has arity {arity}",
                    q.arity()
                ));
            }
        }
        Ok(Interpretation {
            source,
            target,
            defs,
        })
    }

    /// The source signature.
    pub fn source(&self) -> &Arc<Signature> {
        &self.source
    }

    /// The target signature.
    pub fn target(&self) -> &Arc<Signature> {
        &self.target
    }

    /// Applies the interpretation: evaluates every defining query on `s`
    /// and assembles the target structure (same domain).
    ///
    /// # Panics
    /// Panics if `s` is not over the source signature.
    pub fn apply(&self, s: &Structure) -> Structure {
        assert_eq!(s.signature(), &self.source, "signature mismatch");
        let mut b = StructureBuilder::new(self.target.clone(), s.size());
        for ((r, _, _), q) in self.target.relations().zip(self.defs.iter()) {
            for row in relalg::answers(s, q) {
                b.add(r, &row).expect("answers are in range");
            }
        }
        b.build().expect("target is constant-free")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn symmetric_closure_as_interpretation() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "E(x, y) | E(y, x)").unwrap();
        let i = Interpretation::new(sig.clone(), sig.clone(), vec![q]).unwrap();
        let p = builders::directed_path(4);
        let out = i.apply(&p);
        assert_eq!(out, crate::graph::symmetric_closure(&p));
    }

    #[test]
    fn complement_graph() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "!E(x, y) & !(x = y)").unwrap();
        let i = Interpretation::new(sig.clone(), sig.clone(), vec![q]).unwrap();
        let empty = builders::empty_graph(4);
        assert_eq!(i.apply(&empty), builders::complete_graph(4));
        let complete = builders::complete_graph(4);
        assert_eq!(i.apply(&complete), builders::empty_graph(4));
    }

    #[test]
    fn order_to_successor() {
        let order_sig = Signature::order();
        let succ_sig = Signature::successor();
        let q = Query::parse(&order_sig, "x < y & !(exists z. x < z & z < y)").unwrap();
        let i = Interpretation::new(order_sig, succ_sig, vec![q]).unwrap();
        let out = i.apply(&builders::linear_order(5));
        assert_eq!(out, builders::successor_chain(5));
    }

    #[test]
    fn validation_errors() {
        let sig = Signature::graph();
        let unary = Query::parse(&sig, "exists y. E(x, y)").unwrap();
        // Arity mismatch.
        assert!(Interpretation::new(sig.clone(), sig.clone(), vec![unary]).is_err());
        // Wrong number of defs.
        assert!(Interpretation::new(sig.clone(), sig.clone(), vec![]).is_err());
        // Wrong source signature.
        let other = Signature::order();
        let q = Query::parse(&other, "x < y").unwrap();
        assert!(Interpretation::new(sig.clone(), sig, vec![q]).is_err());
    }

    #[test]
    #[should_panic(expected = "signature mismatch")]
    fn apply_checks_signature() {
        let sig = Signature::graph();
        let q = Query::parse(&sig, "E(x, y)").unwrap();
        let i = Interpretation::new(sig, Signature::graph(), vec![q]).unwrap();
        i.apply(&builders::linear_order(3));
    }
}
