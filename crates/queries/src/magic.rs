//! Magic-sets rewriting: goal-directed Datalog evaluation.
//!
//! A query goal `tc("a", y)?` asks for the tuples of one IDB predicate
//! matching a pattern of bound constants and free variables. The
//! batch engines can only materialize *everything*; this module
//! rewrites the program so that the very same engines derive only
//! what the goal can reach (see `docs/magic-sets.md`):
//!
//! 1. **Adornment.** Starting from the goal's bound/free mask, every
//!    IDB predicate reachable from the goal is specialized per
//!    binding pattern (`tc_bf` = first argument bound). Bindings
//!    propagate through rule bodies along a *static* sideways
//!    information passing (SIP) order that mirrors the join planner's
//!    greedy most-bound-first placement, so the rewrite prunes along
//!    the same joins the engine actually runs.
//! 2. **Magic predicates.** Each adorned predicate with at least one
//!    bound position gets a `magic_*` companion holding the bound
//!    argument tuples actually *demanded* during evaluation: a guard
//!    atom restricts every adorned rule, and one magic rule per IDB
//!    body occurrence passes demands sideways from the rule prefix.
//!    The goal itself is seeded through a fresh one-tuple
//!    `__magic_seed` EDB relation appended to the signature.
//! 3. **Strata.** Negated body atoms are adorned and magicked like
//!    positive ones (they are placed only once fully bound, so their
//!    adornment is all-bound). That can close a negative cycle that
//!    the original program did not have; the rewrite re-runs the
//!    [`crate::depgraph`] analysis on its output and rejects such
//!    goals with the typed [`MagicError::Unstratifiable`] instead of
//!    ever evaluating an unstratified program.
//!
//! An all-free goal rewrites to the original program unchanged
//! ([`MagicQuery::transparent`]), so goal-less behavior — extents,
//! counters, delta histories — is preserved byte for byte.
//!
//! Correctness contract (enforced by the `magic` conformance oracle):
//! evaluating the rewritten program and filtering the goal
//! predicate's extent yields exactly the goal-matching tuples of a
//! full materialization of the original program, on every engine.

use crate::datalog::{
    is_ident, trim_span, Atom, DatalogParseError, EvalError, Output, Pred, Program, Rule,
};
use fmt_structures::store::TupleStore;
use fmt_structures::{ConstId, Elem, RelId, Signature, Span, Structure, StructureBuilder};
use std::collections::{HashMap, VecDeque};

/// One argument of a query goal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoalTerm {
    /// A free position. Repeated variables constrain answers to have
    /// equal columns but do not bind for the rewrite.
    Var(String),
    /// A bound position: a numeric literal denoting a domain element.
    Element(Elem),
    /// A bound position: a quoted name resolved through the
    /// signature's declared constants (`tc("a", y)`).
    Named(String),
}

/// A goal argument with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoalArg {
    /// The term.
    pub term: GoalTerm,
    /// Byte span of the argument token.
    pub span: Span,
}

/// A parsed query goal `pred(t₁, …, tₖ)` (the trailing `?` is part of
/// the syntax, not of the spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goal {
    /// The queried predicate name.
    pub pred: String,
    /// Byte span of the predicate name.
    pub pred_span: Span,
    /// The arguments in order.
    pub args: Vec<GoalArg>,
    /// Byte span of the whole goal atom (without the `?`).
    pub span: Span,
}

impl std::fmt::Display for Goal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            let args: Vec<String> = self
                .args
                .iter()
                .map(|a| match &a.term {
                    GoalTerm::Var(v) => v.clone(),
                    GoalTerm::Element(e) => e.to_string(),
                    GoalTerm::Named(n) => format!("{n:?}"),
                })
                .collect();
            write!(f, "({})", args.join(", "))?;
        }
        write!(f, "?")
    }
}

/// Splits a program source into a rule prefix and an optional trailing
/// query goal `pred(t…)?`. On `Ok(Some((len, goal)))`, parse the
/// program from `&src[..len]` — the goal's spans are byte offsets into
/// the *full* `src`, so diagnostics render against the original file.
pub fn split_query(src: &str) -> Result<Option<(usize, Goal)>, DatalogParseError> {
    // Locate the (single) `?` outside quotes; everything after it must
    // be whitespace, everything from the last clause-ending `.` up to
    // it is the goal.
    let mut mark: Option<usize> = None;
    let mut in_quote = false;
    for (i, c) in src.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '?' if !in_quote => {
                if let Some(first) = mark {
                    return Err(DatalogParseError::new(
                        Span::point(i),
                        format!("multiple query goals (first `?` at byte {first})"),
                    ));
                }
                mark = Some(i);
            }
            _ => {}
        }
    }
    let Some(q) = mark else { return Ok(None) };
    let rest = &src[q + 1..];
    if !rest.trim().is_empty() {
        let extra = trim_span(src, Span::new(q + 1, src.len()));
        return Err(DatalogParseError::new(
            extra,
            "the query goal must be the final clause of the program",
        ));
    }
    let mut in_quote = false;
    let mut dot: Option<usize> = None;
    for (i, c) in src[..q].char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '.' if !in_quote => dot = Some(i),
            _ => {}
        }
    }
    let start = dot.map_or(0, |d| d + 1);
    let span = trim_span(src, Span::new(start, q));
    if span.is_empty() {
        return Err(DatalogParseError::new(
            Span::point(q),
            "empty query goal before `?`",
        ));
    }
    Ok(Some((start, parse_goal_at(src, span)?)))
}

/// Parses a standalone goal string (as passed to `fmtk datalog
/// --query`); a trailing `?` is accepted and stripped. Spans are byte
/// offsets into `text`.
pub fn parse_goal(text: &str) -> Result<Goal, DatalogParseError> {
    let mut span = trim_span(text, Span::new(0, text.len()));
    if span.slice(text).ends_with('?') {
        span = trim_span(text, Span::new(span.start, span.end - 1));
    }
    if span.is_empty() {
        return Err(DatalogParseError::new(Span::point(0), "empty query goal"));
    }
    parse_goal_at(text, span)
}

/// Parses the goal atom covered by `span` within `src`.
fn parse_goal_at(src: &str, span: Span) -> Result<Goal, DatalogParseError> {
    let t = span.slice(src);
    let Some(open) = t.find('(') else {
        // Nullary goal: `reach?`.
        if is_ident(t) && !t.starts_with(|c: char| c.is_ascii_digit()) {
            return Ok(Goal {
                pred: t.to_owned(),
                pred_span: span,
                args: Vec::new(),
                span,
            });
        }
        return Err(DatalogParseError::new(
            span,
            format!("malformed query goal {t:?}"),
        ));
    };
    if !t.ends_with(')') {
        return Err(DatalogParseError::new(
            span,
            format!("missing ')' in query goal {t:?}"),
        ));
    }
    let pred_span = trim_span(src, Span::new(span.start, span.start + open));
    let pred = pred_span.slice(src).to_owned();
    if !is_ident(&pred) || pred.starts_with(|c: char| c.is_ascii_digit()) {
        return Err(DatalogParseError::new(
            pred_span,
            format!("malformed query predicate {pred:?}"),
        ));
    }
    let inner = Span::new(span.start + open + 1, span.end - 1);
    let mut args = Vec::new();
    if !trim_span(src, inner).is_empty() {
        // Split on commas outside quotes.
        let bytes = inner.slice(src).as_bytes().to_vec();
        let mut in_quote = false;
        let mut piece_start = inner.start;
        for j in 0..=bytes.len() {
            if j < bytes.len() {
                if bytes[j] == b'"' {
                    in_quote = !in_quote;
                    continue;
                }
                if bytes[j] != b',' || in_quote {
                    continue;
                }
            }
            let a = trim_span(src, Span::new(piece_start, inner.start + j));
            piece_start = inner.start + j + 1;
            args.push(parse_goal_arg(src, a)?);
        }
    }
    Ok(Goal {
        pred,
        pred_span,
        args,
        span,
    })
}

/// Parses one goal argument token: quoted name, numeric literal, or
/// variable.
fn parse_goal_arg(src: &str, span: Span) -> Result<GoalArg, DatalogParseError> {
    let t = span.slice(src);
    let term = if let Some(q) = t.strip_prefix('"') {
        let name = q
            .strip_suffix('"')
            .filter(|n| !n.is_empty())
            .ok_or_else(|| {
                DatalogParseError::new(span, format!("malformed quoted constant {t:?}"))
            })?;
        GoalTerm::Named(name.to_owned())
    } else if !t.is_empty() && t.chars().all(|c| c.is_ascii_digit()) {
        let e: Elem = t
            .parse()
            .map_err(|_| DatalogParseError::new(span, format!("numeric constant {t} overflows")))?;
        GoalTerm::Element(e)
    } else if is_ident(t) {
        GoalTerm::Var(t.to_owned())
    } else {
        return Err(DatalogParseError::new(
            span,
            format!("malformed goal argument {t:?} (variable, number, or \"name\")"),
        ));
    };
    Ok(GoalArg { term, span })
}

/// Why a goal cannot be rewritten or evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MagicError {
    /// The goal names a predicate that is neither an IDB of the
    /// program nor an EDB relation (lint code D010).
    UnknownPredicate {
        /// The unresolved name.
        pred: String,
        /// Span of the predicate name in the goal.
        span: Span,
    },
    /// The goal names an EDB relation; only IDB predicates can be
    /// queried (lint code D010).
    NotIdb {
        /// The EDB relation name.
        pred: String,
        /// Span of the predicate name in the goal.
        span: Span,
    },
    /// The goal's argument count differs from the predicate's arity
    /// (lint code D010).
    ArityMismatch {
        /// The queried predicate.
        pred: String,
        /// Its declared arity.
        expected: usize,
        /// The goal's argument count.
        got: usize,
        /// Span of the whole goal atom.
        span: Span,
    },
    /// A quoted goal constant names no declared signature constant
    /// (lint code D010).
    UnknownConstant {
        /// The unresolved constant name.
        name: String,
        /// Span of the argument.
        span: Span,
    },
    /// The *original* program is statically rejected (D006/D007) — the
    /// same typed error full materialization reports, surfaced before
    /// rewriting so a goal cannot sneak past an unstratifiable
    /// program whose bad cycle it happens not to reach.
    Original(EvalError),
    /// The rewrite itself broke stratification: a `magic_*` demand
    /// rule closed a recursive component through a negated atom. The
    /// goal must be evaluated by full materialization instead.
    Unstratifiable {
        /// The negated predicate (adorned name) inside the component.
        pred: String,
        /// The component's predicate names, for diagnostics.
        cycle: Vec<String>,
    },
}

impl MagicError {
    /// The goal-source span of a resolution error (the D010 family);
    /// `None` for the program-level variants.
    pub fn goal_span(&self) -> Option<Span> {
        match self {
            MagicError::UnknownPredicate { span, .. }
            | MagicError::NotIdb { span, .. }
            | MagicError::ArityMismatch { span, .. }
            | MagicError::UnknownConstant { span, .. } => Some(*span),
            MagicError::Original(_) | MagicError::Unstratifiable { .. } => None,
        }
    }
}

impl std::fmt::Display for MagicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MagicError::UnknownPredicate { pred, .. } => {
                write!(f, "query goal references unknown predicate {pred}")
            }
            MagicError::NotIdb { pred, .. } => write!(
                f,
                "query goal names the EDB relation {pred}; only IDB predicates can be queried"
            ),
            MagicError::ArityMismatch {
                pred,
                expected,
                got,
                ..
            } => write!(
                f,
                "query goal arity mismatch: {pred} has arity {expected}, goal has {got} arguments"
            ),
            MagicError::UnknownConstant { name, .. } => {
                write!(f, "query goal references undeclared constant {name:?}")
            }
            MagicError::Original(e) => e.fmt(f),
            MagicError::Unstratifiable { pred, cycle } => write!(
                f,
                "magic-sets rewriting of this goal is not stratifiable: the demand rules \
                 close a recursive component {{{}}} through negated {pred}",
                cycle.join(", ")
            ),
        }
    }
}

impl std::error::Error for MagicError {}

/// A bound goal constant, resolved against the program signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResolvedConst {
    /// A numeric literal; out-of-domain values simply match nothing.
    Element(Elem),
    /// A declared signature constant, interpreted by the structure.
    Named(ConstId),
}

/// A goal resolved against a concrete program: the IDB it queries and
/// its per-position bound/free mask.
#[derive(Debug, Clone)]
pub struct ResolvedGoal {
    /// IDB index of the goal predicate in the original program.
    pub idb: usize,
    /// `mask[p]` is `true` iff goal position `p` is bound.
    pub mask: Vec<bool>,
    /// Bound constants, aligned with `mask`.
    consts: Vec<Option<ResolvedConst>>,
    /// Positions sharing a repeated goal variable (groups of ≥ 2).
    var_groups: Vec<Vec<usize>>,
}

/// Resolves a goal against a program: checks the predicate exists, is
/// an IDB, the arity matches, and every quoted constant is declared —
/// the whole D010 family.
pub fn resolve_goal(prog: &Program, goal: &Goal) -> Result<ResolvedGoal, MagicError> {
    let sig = prog.signature();
    if sig
        .relations()
        .any(|(_, n, _)| n.eq_ignore_ascii_case(&goal.pred))
    {
        return Err(MagicError::NotIdb {
            pred: goal.pred.clone(),
            span: goal.pred_span,
        });
    }
    let idb = prog
        .idb(&goal.pred)
        .ok_or_else(|| MagicError::UnknownPredicate {
            pred: goal.pred.clone(),
            span: goal.pred_span,
        })?;
    let (_, arity) = prog.idb_info(idb);
    if arity != goal.args.len() {
        return Err(MagicError::ArityMismatch {
            pred: goal.pred.clone(),
            expected: arity,
            got: goal.args.len(),
            span: goal.span,
        });
    }
    let mut consts = Vec::with_capacity(goal.args.len());
    let mut groups: HashMap<&str, Vec<usize>> = HashMap::new();
    for (p, arg) in goal.args.iter().enumerate() {
        match &arg.term {
            GoalTerm::Var(v) => {
                groups.entry(v).or_default().push(p);
                consts.push(None);
            }
            GoalTerm::Element(e) => consts.push(Some(ResolvedConst::Element(*e))),
            GoalTerm::Named(n) => {
                let c = sig.constant(n).ok_or_else(|| MagicError::UnknownConstant {
                    name: n.clone(),
                    span: arg.span,
                })?;
                consts.push(Some(ResolvedConst::Named(c)));
            }
        }
    }
    let mut var_groups: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() >= 2).collect();
    var_groups.sort();
    Ok(ResolvedGoal {
        idb,
        mask: consts.iter().map(Option::is_some).collect(),
        consts,
        var_groups,
    })
}

/// What each IDB of a rewritten program stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdbRole {
    /// Adorned copy of the original IDB with this index.
    Adorned(usize),
    /// Magic (demand) predicate of the adorned IDB with this index in
    /// the *rewritten* program.
    Magic(usize),
}

/// The result of [`rewrite`]: a program specialized to one goal.
#[derive(Debug, Clone)]
pub struct MagicQuery {
    /// The program to evaluate — the magic-sets rewrite, or a clone of
    /// the original for all-free (transparent) goals.
    pub program: Program,
    /// IDB index in [`Self::program`] whose extent holds the goal
    /// tuples (before [`Self::filter`]).
    pub goal_idb: usize,
    /// IDB index of the goal predicate in the original program.
    pub orig_idb: usize,
    /// `true` when the rewrite was the identity (all-free goal):
    /// [`Self::program`] is the original and [`Self::prepare`] returns
    /// the input structure unchanged.
    pub transparent: bool,
    /// Role of every IDB of [`Self::program`].
    roles: Vec<IdbRole>,
    /// The resolved goal (bound constants, repeated variables).
    resolved: ResolvedGoal,
    /// The appended seed relation (`None` when transparent).
    seed: Option<RelId>,
}

/// Rewrites `prog` for goal-directed evaluation of `goal`. See the
/// module docs for the algorithm and [`MagicError`] for the rejection
/// cases.
pub fn rewrite(prog: &Program, goal: &Goal) -> Result<MagicQuery, MagicError> {
    let resolved = resolve_goal(prog, goal)?;
    // The original program must be evaluable at all: an unstratifiable
    // or unsafe program is rejected with the engines' own typed error
    // even when the goal would not reach the offending rules.
    prog.eval_strata().map_err(MagicError::Original)?;
    if resolved.mask.iter().all(|&b| !b) {
        let roles = (0..prog.num_idbs()).map(IdbRole::Adorned).collect();
        return Ok(MagicQuery {
            program: prog.clone(),
            goal_idb: resolved.idb,
            orig_idb: resolved.idb,
            transparent: true,
            roles,
            resolved,
            seed: None,
        });
    }

    let sig = prog.signature();
    let mut rw = Rewriter {
        prog,
        names: Vec::new(),
        arity: Vec::new(),
        roles: Vec::new(),
        rules: Vec::new(),
        adorned: HashMap::new(),
        magic: HashMap::new(),
        queue: VecDeque::new(),
    };
    let goal_adorned = rw.ensure(resolved.idb, resolved.mask.clone());
    while let Some((orig, mask)) = rw.queue.pop_front() {
        rw.adapt_rules(orig, &mask);
    }

    // Seed: a fresh EDB relation carries the goal's bound constants
    // into the goal's magic predicate.
    let mut seed_name = "__magic_seed".to_owned();
    while sig
        .relations()
        .any(|(_, n, _)| n.eq_ignore_ascii_case(&seed_name))
    {
        seed_name.push_str("_x");
    }
    let bound_arity = resolved.mask.iter().filter(|&&b| b).count();
    let mut b = Signature::builder();
    for (_, n, a) in sig.relations() {
        b = b.relation(n, a);
    }
    b = b.relation(&seed_name, bound_arity);
    for (_, n) in sig.constants() {
        b = b.constant(n);
    }
    let ext_sig = b.finish_arc();
    let seed_rel = ext_sig
        .relation(&seed_name)
        .expect("seed relation declared");
    let goal_magic = rw.magic[&(resolved.idb, resolved.mask.clone())];
    let seed_args: Vec<u32> = (0..bound_arity as u32).collect();
    rw.rules.push(Rule {
        head: Atom {
            pred: Pred::Idb(goal_magic),
            args: seed_args.clone(),
            negated: false,
        },
        body: vec![Atom {
            pred: Pred::Edb(seed_rel),
            args: seed_args,
            negated: false,
        }],
    });

    let program = Program::from_parts(ext_sig, rw.names, rw.arity, rw.rules);
    // Demand rules can close negative cycles the original did not
    // have; such goals are rejected rather than mis-evaluated.
    if let Err(e) = program.eval_strata() {
        return Err(match e {
            EvalError::Unstratifiable { pred, cycle, .. } => {
                MagicError::Unstratifiable { pred, cycle }
            }
            // The rewrite never weakens negation safety (every
            // original positive atom survives), so this arm is
            // unreachable; surface it typed rather than panic.
            other => MagicError::Original(other),
        });
    }
    Ok(MagicQuery {
        program,
        goal_idb: goal_adorned,
        orig_idb: resolved.idb,
        transparent: false,
        roles: rw.roles,
        resolved,
        seed: Some(seed_rel),
    })
}

impl MagicQuery {
    /// Role of every IDB of [`Self::program`], aligned with its IDB
    /// indices (all [`IdbRole::Adorned`] identities when transparent).
    pub fn roles(&self) -> &[IdbRole] {
        &self.roles
    }

    /// The structure to evaluate [`Self::program`] on: the input
    /// extended with the one-tuple seed relation holding the goal's
    /// bound constants. The seed stays empty when a numeric constant
    /// lies outside the domain — the query then derives nothing, which
    /// is exactly its answer set. Transparent queries return the input
    /// unchanged.
    pub fn prepare(&self, s: &Structure) -> Structure {
        let Some(seed) = self.seed else {
            return s.clone();
        };
        let mut b = StructureBuilder::new(self.program.signature().clone(), s.size());
        for (r, _, _) in s.signature().relations() {
            for row in s.rel(r).iter() {
                b.add(r, row).expect("copied tuple is in range");
            }
        }
        for (c, _) in s.signature().constants() {
            b.set_constant(c, s.constant(c));
        }
        if let Some(tuple) = self.seed_tuple(s) {
            b.add(seed, &tuple).expect("seed constants are in range");
        }
        b.build().expect("extended structure is well-formed")
    }

    /// The seed tuple (bound constants in position order), or `None`
    /// when some constant denotes no element of `s`.
    fn seed_tuple(&self, s: &Structure) -> Option<Vec<Elem>> {
        self.resolved
            .consts
            .iter()
            .flatten()
            .map(|c| self.resolve(s, *c))
            .collect()
    }

    fn resolve(&self, s: &Structure, c: ResolvedConst) -> Option<Elem> {
        match c {
            ResolvedConst::Element(e) => (e < s.size()).then_some(e),
            ResolvedConst::Named(c) => Some(s.constant(c)),
        }
    }

    /// Filters a goal-predicate extent down to the tuples the goal
    /// matches — bound positions equal to their constants, repeated
    /// goal variables equal to each other — sorted. Apply it to
    /// `relation(goal_idb)` of the rewritten program's output, or to
    /// the goal predicate's extent of a full materialization of the
    /// original program: the two must coincide, which is the `magic`
    /// conformance oracle's equation.
    pub fn filter(&self, s: &Structure, rows: &TupleStore) -> Vec<Vec<Elem>> {
        let mut want: Vec<Option<Elem>> = Vec::with_capacity(self.resolved.consts.len());
        for c in &self.resolved.consts {
            match c {
                None => want.push(None),
                Some(rc) => match self.resolve(s, *rc) {
                    Some(e) => want.push(Some(e)),
                    // An out-of-domain constant matches nothing.
                    None => return Vec::new(),
                },
            }
        }
        let mut v: Vec<Vec<Elem>> = rows
            .iter()
            .filter(|row| {
                want.iter()
                    .zip(row.iter())
                    .all(|(w, &e)| w.is_none_or(|w| w == e))
                    && self
                        .resolved
                        .var_groups
                        .iter()
                        .all(|g| g.iter().all(|&p| row[p] == row[g[0]]))
            })
            .collect();
        v.sort();
        v
    }

    /// [`Self::filter`] applied to the rewritten output's goal extent.
    pub fn answers(&self, s: &Structure, out: &Output) -> Vec<Vec<Elem>> {
        self.filter(s, out.relation(self.goal_idb))
    }
}

/// The worklist state of one rewrite.
struct Rewriter<'a> {
    prog: &'a Program,
    names: Vec<String>,
    arity: Vec<usize>,
    roles: Vec<IdbRole>,
    rules: Vec<Rule>,
    adorned: HashMap<(usize, Vec<bool>), usize>,
    magic: HashMap<(usize, Vec<bool>), usize>,
    queue: VecDeque<(usize, Vec<bool>)>,
}

/// `bf`-style suffix of a bound/free mask.
fn adornment(mask: &[bool]) -> String {
    mask.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

impl Rewriter<'_> {
    /// A name not colliding with EDB relations or already-allocated
    /// IDBs (collisions are possible when the source program itself
    /// uses `tc_bf`-style names).
    fn fresh_name(&self, base: String) -> String {
        let mut name = base;
        let sig = self.prog.signature();
        while self.names.contains(&name)
            || sig
                .relations()
                .any(|(_, n, _)| n.eq_ignore_ascii_case(&name))
        {
            name.push_str("_m");
        }
        name
    }

    /// The adorned IDB index for `(orig, mask)`, allocating it (plus
    /// its magic companion and a worklist entry) on first sight.
    fn ensure(&mut self, orig: usize, mask: Vec<bool>) -> usize {
        if let Some(&i) = self.adorned.get(&(orig, mask.clone())) {
            return i;
        }
        let (name, arity) = self.prog.idb_info(orig);
        let a = self.names.len();
        self.names
            .push(self.fresh_name(format!("{name}_{}", adornment(&mask))));
        self.arity.push(arity);
        self.roles.push(IdbRole::Adorned(orig));
        self.adorned.insert((orig, mask.clone()), a);
        if mask.iter().any(|&b| b) {
            let m = self.names.len();
            self.names
                .push(self.fresh_name(format!("magic_{name}_{}", adornment(&mask))));
            self.arity.push(mask.iter().filter(|&&b| b).count());
            self.roles.push(IdbRole::Magic(a));
            self.magic.insert((orig, mask.clone()), m);
        }
        self.queue.push_back((orig, mask));
        a
    }

    /// Emits the adorned variant of every rule defining `orig`, plus
    /// one magic (demand) rule per IDB body occurrence.
    fn adapt_rules(&mut self, orig: usize, mask: &[bool]) {
        let head_idb = self.adorned[&(orig, mask.to_vec())];
        let guard = self.magic.get(&(orig, mask.to_vec())).copied();
        for rule in self.prog.rules().to_vec() {
            if rule.head.pred != Pred::Idb(orig) {
                continue;
            }
            self.adapt_rule(&rule, head_idb, mask, guard);
        }
    }

    fn adapt_rule(&mut self, rule: &Rule, head_idb: usize, mask: &[bool], guard: Option<usize>) {
        // Bound variables start from the head's bound positions (the
        // guard binds them) and grow along the static SIP order below.
        let mut bound: Vec<u32> = Vec::new();
        let bind = |bound: &mut Vec<u32>, v: u32| {
            if !bound.contains(&v) {
                bound.push(v);
            }
        };
        for (p, &b) in mask.iter().enumerate() {
            if b {
                bind(&mut bound, rule.head.args[p]);
            }
        }
        let mut body: Vec<Atom> = Vec::new();
        if let Some(m) = guard {
            let args: Vec<u32> = mask
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(p, _)| rule.head.args[p])
                .collect();
            body.push(Atom {
                pred: Pred::Idb(m),
                args,
                negated: false,
            });
        }

        // Static SIP: mirror the join planner — negated atoms as soon
        // as all their variables are bound, otherwise the most-bound
        // (ties: earliest-written) positive atom next.
        let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
        let mut order: Vec<usize> = Vec::new();
        loop {
            // Place every ready negated atom, in written order.
            let mut placed = true;
            while placed {
                placed = false;
                for (k, &i) in remaining.iter().enumerate() {
                    let a = &rule.body[i];
                    if a.negated && a.args.iter().all(|v| bound.contains(v)) {
                        order.push(i);
                        remaining.remove(k);
                        placed = true;
                        break;
                    }
                }
            }
            // Most-bound positive atom next (ties: earliest written).
            let next = remaining
                .iter()
                .enumerate()
                .filter(|&(_, &i)| !rule.body[i].negated)
                .max_by_key(|&(_, &i)| {
                    let a = &rule.body[i];
                    let n = a.args.iter().filter(|v| bound.contains(v)).count();
                    (n, std::cmp::Reverse(i))
                });
            let Some((k, &i)) = next else { break };
            order.push(i);
            remaining.remove(k);
            for &v in &rule.body[i].args {
                bind(&mut bound, v);
            }
        }
        debug_assert!(
            remaining.is_empty(),
            "unsafe negation survived the original program's strata check"
        );
        order.extend(remaining); // defensive: keep arities consistent

        // Walk the placement order, adorning IDB atoms against the
        // bindings established *before* each one and emitting its
        // demand rule from the prefix.
        let mut bound: Vec<u32> = body.first().map(|g| g.args.clone()).unwrap_or_default();
        for &i in &order {
            let atom = &rule.body[i];
            match atom.pred {
                Pred::Edb(_) => body.push(atom.clone()),
                Pred::Idb(o2) => {
                    let mask2: Vec<bool> = atom.args.iter().map(|v| bound.contains(v)).collect();
                    let a2 = self.ensure(o2, mask2.clone());
                    if let Some(&m2) = self.magic.get(&(o2, mask2.clone())) {
                        let args: Vec<u32> = atom
                            .args
                            .iter()
                            .zip(&mask2)
                            .filter(|&(_, &b)| b)
                            .map(|(&v, _)| v)
                            .collect();
                        self.rules.push(Rule {
                            head: Atom {
                                pred: Pred::Idb(m2),
                                args,
                                negated: false,
                            },
                            body: body.clone(),
                        });
                    }
                    body.push(Atom {
                        pred: Pred::Idb(a2),
                        args: atom.args.clone(),
                        negated: atom.negated,
                    });
                }
            }
            if !atom.negated {
                for &v in &atom.args {
                    bind(&mut bound, v);
                }
            }
        }
        self.rules.push(Rule {
            head: Atom {
                pred: Pred::Idb(head_idb),
                args: rule.head.args.clone(),
                negated: false,
            },
            body,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    fn tc_with_goal(goal: &str) -> (Program, Goal) {
        let sig = Signature::graph();
        let src = format!("tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z). {goal}");
        let (len, g) = split_query(&src).unwrap().unwrap();
        let prog = Program::parse(&sig, &src[..len]).unwrap();
        (prog, g)
    }

    #[test]
    fn split_finds_the_trailing_goal() {
        let src = "tc(x, y) :- e(x, y). tc(\"a\", y)?";
        let (len, g) = split_query(src).unwrap().unwrap();
        assert_eq!(&src[..len], "tc(x, y) :- e(x, y).");
        assert_eq!(g.pred, "tc");
        assert_eq!(g.args.len(), 2);
        assert_eq!(g.args[0].term, GoalTerm::Named("a".to_owned()));
        assert_eq!(g.args[1].term, GoalTerm::Var("y".to_owned()));
        assert_eq!(g.span.slice(src), "tc(\"a\", y)");
        assert_eq!(g.to_string(), "tc(\"a\", y)?");
    }

    #[test]
    fn split_without_goal_and_malformed_goals() {
        assert_eq!(split_query("tc(x, y) :- e(x, y).").unwrap(), None);
        assert!(split_query("tc(x)? tc(y)?").is_err()); // two marks
        assert!(split_query("tc(x)? e(0, 1).").is_err()); // goal not last
        assert!(split_query("tc(x, y) :- e(x, y). ?").is_err()); // empty
        assert_eq!(split_query("p(x) :- e(x, x). p(x").unwrap(), None);
        assert!(split_query("p(x) :- e(x, x). p(x?").is_err());
    }

    #[test]
    fn parse_goal_accepts_flag_syntax() {
        let g = parse_goal("tc(3, y)?").unwrap();
        assert_eq!(g.args[0].term, GoalTerm::Element(3));
        let g = parse_goal("  reach  ").unwrap();
        assert!(g.args.is_empty());
        assert!(parse_goal("").is_err());
        assert!(parse_goal("tc(x,)?").is_err());
        assert!(parse_goal("3(x)?").is_err());
    }

    #[test]
    fn goal_resolution_errors() {
        let (prog, _) = tc_with_goal("tc(0, y)?");
        let err = |g: &str| resolve_goal(&prog, &parse_goal(g).unwrap()).unwrap_err();
        assert!(matches!(
            err("ghost(x)?"),
            MagicError::UnknownPredicate { .. }
        ));
        assert!(matches!(err("e(x, y)?"), MagicError::NotIdb { .. }));
        assert!(matches!(err("tc(x)?"), MagicError::ArityMismatch { .. }));
        assert!(matches!(
            err("tc(\"zeus\", y)?"),
            MagicError::UnknownConstant { .. }
        ));
    }

    #[test]
    fn all_free_goals_are_transparent() {
        let (prog, goal) = tc_with_goal("tc(x, y)?");
        let mq = rewrite(&prog, &goal).unwrap();
        assert!(mq.transparent);
        assert_eq!(mq.program.rules(), prog.rules());
        assert_eq!(mq.goal_idb, mq.orig_idb);
        let s = builders::directed_path(5);
        assert_eq!(mq.prepare(&s).signature(), s.signature());
        let out = mq.program.eval_seminaive(&s);
        let full = prog.eval_seminaive(&s);
        assert_eq!(mq.answers(&s, &out), mq.filter(&s, full.relation(0)));
    }

    #[test]
    fn bound_goal_prunes_and_agrees_with_filtered_full() {
        let (prog, goal) = tc_with_goal("tc(6, y)?");
        let mq = rewrite(&prog, &goal).unwrap();
        assert!(!mq.transparent);
        let s = builders::directed_path(10);
        let es = mq.prepare(&s);
        let out = mq.program.eval_seminaive(&es);
        let full = prog.eval_seminaive(&s);
        let expect = mq.filter(&s, full.relation(0));
        assert_eq!(
            expect,
            vec![vec![6, 7], vec![6, 8], vec![6, 9]],
            "goal-filtered full materialization"
        );
        assert_eq!(mq.answers(&s, &out), expect);
        assert!(
            out.derivations < full.derivations,
            "magic evaluation must prune: {} vs {}",
            out.derivations,
            full.derivations
        );
    }

    #[test]
    fn repeated_goal_variables_constrain_answers_but_not_bindings() {
        let sig = Signature::graph();
        let src = "sg(x, x). sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp). sg(z, z)?";
        let (len, goal) = split_query(src).unwrap().unwrap();
        let prog = Program::parse(&sig, &src[..len]).unwrap();
        let mq = rewrite(&prog, &goal).unwrap();
        assert!(mq.transparent, "repeated variables do not bind");
        let s = builders::full_binary_tree(3);
        let out = mq.program.eval_seminaive(&s);
        let answers = mq.answers(&s, &out);
        let diag: Vec<Vec<Elem>> = s.domain().map(|d| vec![d, d]).collect();
        assert_eq!(answers, diag);
    }

    #[test]
    fn out_of_domain_constants_yield_empty_answers() {
        let (prog, goal) = tc_with_goal("tc(999, y)?");
        let mq = rewrite(&prog, &goal).unwrap();
        let s = builders::directed_path(4);
        let es = mq.prepare(&s);
        assert!(es.rel(mq.seed.unwrap()).is_empty(), "seed stays empty");
        let out = mq.program.eval_seminaive(&es);
        assert!(mq.answers(&s, &out).is_empty());
        let full = prog.eval_seminaive(&s);
        assert!(mq.filter(&s, full.relation(0)).is_empty());
    }

    #[test]
    fn named_constants_resolve_through_the_structure() {
        let sig = Signature::builder()
            .relation("E", 2)
            .constant("a")
            .finish_arc();
        let src = "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z). tc(\"a\", y)?";
        let (len, goal) = split_query(src).unwrap().unwrap();
        let prog = Program::parse(&sig, &src[..len]).unwrap();
        let mq = rewrite(&prog, &goal).unwrap();
        let mut b = StructureBuilder::new(sig.clone(), 4);
        for i in 0..3u32 {
            b.add(sig.relation("E").unwrap(), &[i, i + 1]).unwrap();
        }
        b.set_constant(sig.constant("a").unwrap(), 2);
        let s = b.build().unwrap();
        let out = mq.program.eval_seminaive(&mq.prepare(&s));
        assert_eq!(mq.answers(&s, &out), vec![vec![2, 3]]);
    }

    #[test]
    fn stratified_negation_survives_when_demand_stays_acyclic() {
        let sig = Signature::graph();
        let src = "t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z). \
                   nt(x, y) :- e(x, y), !t(y, x). nt(0, y)?";
        let (len, goal) = split_query(src).unwrap().unwrap();
        let prog = Program::parse(&sig, &src[..len]).unwrap();
        let mq = rewrite(&prog, &goal).unwrap();
        let s = builders::directed_path(6);
        let out = mq.program.eval_seminaive(&mq.prepare(&s));
        let full = prog.eval_seminaive(&s);
        assert_eq!(
            mq.answers(&s, &out),
            mq.filter(&s, full.relation(prog.idb("nt").unwrap()))
        );
    }

    #[test]
    fn demand_through_negation_inside_recursion_is_rejected() {
        // Original: stratified (b below t). Rewritten: the demand rule
        // magic_b_b :- …, t_bf(y, z) closes {t_bf, b_b, magic_b_b}
        // through the negative edge t_bf → b_b.
        let sig = Signature::graph();
        let src = "t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z), !b(z). \
                   b(x) :- e(x, x). t(0, y)?";
        let (len, goal) = split_query(src).unwrap().unwrap();
        let prog = Program::parse(&sig, &src[..len]).unwrap();
        assert!(prog.eval_strata().is_ok());
        match rewrite(&prog, &goal) {
            Err(MagicError::Unstratifiable { cycle, .. }) => {
                assert!(cycle.iter().any(|p| p.starts_with("magic_")), "{cycle:?}");
            }
            other => panic!("expected Unstratifiable, got {other:?}"),
        }
    }

    #[test]
    fn unstratifiable_originals_are_rejected_before_rewriting() {
        let sig = Signature::graph();
        let src = "w(x) :- e(x, x), !w(x). w(0)?";
        let (len, goal) = split_query(src).unwrap().unwrap();
        let prog = Program::parse(&sig, &src[..len]).unwrap();
        assert!(matches!(
            rewrite(&prog, &goal),
            Err(MagicError::Original(EvalError::Unstratifiable { .. }))
        ));
    }

    #[test]
    fn every_magic_predicate_has_a_rule() {
        let (prog, goal) = tc_with_goal("tc(0, y)?");
        let mq = rewrite(&prog, &goal).unwrap();
        for (i, role) in mq.roles().iter().enumerate() {
            if let IdbRole::Magic(_) = role {
                assert!(
                    mq.program
                        .rules()
                        .iter()
                        .any(|r| r.head.pred == Pred::Idb(i)),
                    "magic predicate {} has no rules",
                    mq.program.idb_info(i).0
                );
            }
        }
    }
}
