//! A Datalog engine with naive and semi-naive evaluation.
//!
//! The survey's same-generation example is a Datalog program:
//!
//! ```text
//! sg(x, x).
//! sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp).
//! ```
//!
//! On a full binary tree of depth `d` its output realizes all degrees
//! `1, 2, 4, …, 2^d` — violating the BNDP, hence not FO-definable
//! (experiment E7). Transitive closure is the other canonical fixpoint
//! query. Both ship as ready-made [`Program`]s; arbitrary programs can
//! be parsed from the textual syntax above.
//!
//! Semantics notes:
//!
//! * EDB predicates are the relations of the input structure, matched
//!   by name case-insensitively (`e` ↦ relation `E`);
//! * head variables not bound by the body range over the **whole
//!   domain** (the paper's `sg(x, x) :-` fact means "for every element
//!   x"), which relaxes the usual range-restriction requirement;
//! * [`Program::eval_naive`] recomputes all rules to fixpoint;
//!   [`Program::eval_seminaive`] focuses each recursive rule on the
//!   latest delta — same fixpoint, far fewer rule instantiations
//!   (measured in the `datalog` bench).

use fmt_structures::{Elem, RelId, Signature, Structure};
use std::collections::HashSet;

/// Fixpoint rounds of semi-naive evaluation (the initialization pass
/// counts as round one, mirroring `Output::iterations`).
static OBS_ROUNDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.rounds");
/// New facts discovered across all semi-naive rounds.
static OBS_DELTA_FACTS: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.delta_facts");
/// New facts per semi-naive round (the engine's termination signal).
static OBS_DELTA_SIZE: fmt_obs::Histogram = fmt_obs::Histogram::new("queries.datalog.delta_size");
/// Fixpoint rounds of the naive reference evaluator.
static OBS_NAIVE_ROUNDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.naive_rounds");

/// A Datalog variable (local to a rule).
type DlVar = u32;

/// A predicate: either an input relation (EDB) or a derived one (IDB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// An EDB predicate: a relation of the input structure.
    Edb(RelId),
    /// An IDB predicate, by index into the program's IDB table.
    Idb(usize),
}

/// An atom `p(v₁, …, vₖ)` in a rule (variables only; repeated variables
/// express equality constraints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The predicate.
    pub pred: Pred,
    /// Argument variables.
    pub args: Vec<DlVar>,
}

/// A rule `head :- body₁, …, bodyₖ` (empty body = a fact schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom (always an IDB predicate).
    pub head: Atom,
    /// The body atoms.
    pub body: Vec<Atom>,
}

/// A validated Datalog program over a fixed input signature.
#[derive(Debug, Clone)]
pub struct Program {
    sig: std::sync::Arc<Signature>,
    idb_names: Vec<String>,
    idb_arity: Vec<usize>,
    rules: Vec<Rule>,
}

/// The result of evaluating a program: one tuple set per IDB predicate,
/// plus work counters.
#[derive(Debug, Clone)]
pub struct Output {
    relations: Vec<HashSet<Vec<Elem>>>,
    /// Fixpoint iterations performed.
    pub iterations: usize,
    /// Tuples produced across all rule applications (incl. duplicates).
    pub derivations: u64,
}

impl Output {
    /// The tuples of an IDB predicate.
    pub fn relation(&self, idb: usize) -> &HashSet<Vec<Elem>> {
        &self.relations[idb]
    }
}

impl Program {
    /// Parses a program; each line is `head :- a1, a2, ... .` or a
    /// body-less `head.` / `head :- .`. Predicates matching a relation
    /// name of `sig` (case-insensitively) are EDB; all others must
    /// appear in some head and are IDB.
    pub fn parse(sig: &std::sync::Arc<Signature>, src: &str) -> Result<Program, String> {
        struct RawAtom {
            pred: String,
            args: Vec<String>,
        }
        fn parse_atom(t: &str) -> Result<RawAtom, String> {
            let t = t.trim();
            let open = t.find('(').ok_or_else(|| format!("missing '(' in {t:?}"))?;
            let close = t
                .rfind(')')
                .ok_or_else(|| format!("missing ')' in {t:?}"))?;
            let pred = t[..open].trim().to_owned();
            if pred.is_empty() {
                return Err(format!("empty predicate name in {t:?}"));
            }
            let args = t[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_owned())
                .collect::<Vec<_>>();
            if args.iter().any(String::is_empty) {
                return Err(format!("empty argument in {t:?}"));
            }
            Ok(RawAtom { pred, args })
        }

        // Split on '.', tolerate whitespace/newlines.
        let mut raw_rules: Vec<(RawAtom, Vec<RawAtom>)> = Vec::new();
        for clause in src.split('.') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (head_src, body_src) = match clause.split_once(":-") {
                Some((h, b)) => (h, b.trim()),
                None => (clause, ""),
            };
            let head = parse_atom(head_src)?;
            let mut body = Vec::new();
            if !body_src.is_empty() {
                // Split body on commas at depth zero.
                let mut depth = 0usize;
                let mut start = 0usize;
                let bytes = body_src.as_bytes();
                for (i, &c) in bytes.iter().enumerate() {
                    match c {
                        b'(' => depth += 1,
                        b')' => depth = depth.saturating_sub(1),
                        b',' if depth == 0 => {
                            body.push(parse_atom(&body_src[start..i])?);
                            start = i + 1;
                        }
                        _ => {}
                    }
                }
                body.push(parse_atom(&body_src[start..])?);
            }
            raw_rules.push((head, body));
        }
        if raw_rules.is_empty() {
            return Err("empty program".into());
        }

        let lookup_edb = |name: &str| -> Option<RelId> {
            sig.relations()
                .find(|(_, n, _)| n.eq_ignore_ascii_case(name))
                .map(|(r, _, _)| r)
        };

        // IDB predicates: all head predicates, in order of appearance.
        let mut idb_names: Vec<String> = Vec::new();
        let mut idb_arity: Vec<usize> = Vec::new();
        for (head, _) in &raw_rules {
            if lookup_edb(&head.pred).is_some() {
                return Err(format!("cannot redefine EDB predicate {}", head.pred));
            }
            match idb_names.iter().position(|n| n == &head.pred) {
                Some(i) => {
                    if idb_arity[i] != head.args.len() {
                        return Err(format!("inconsistent arity for {}", head.pred));
                    }
                }
                None => {
                    idb_names.push(head.pred.clone());
                    idb_arity.push(head.args.len());
                }
            }
        }

        let mut rules = Vec::new();
        for (head, body) in &raw_rules {
            // Per-rule variable table.
            let mut vars: Vec<String> = Vec::new();
            let var_of = |name: &str, vars: &mut Vec<String>| -> DlVar {
                match vars.iter().position(|v| v == name) {
                    Some(i) => i as DlVar,
                    None => {
                        vars.push(name.to_owned());
                        vars.len() as DlVar - 1
                    }
                }
            };
            let resolve = |raw: &RawAtom,
                           vars: &mut Vec<String>,
                           var_of: &mut dyn FnMut(&str, &mut Vec<String>) -> DlVar|
             -> Result<Atom, String> {
                let pred = if let Some(r) = lookup_edb(&raw.pred) {
                    if sig.arity(r) != raw.args.len() {
                        return Err(format!(
                            "EDB predicate {} has arity {}, atom has {}",
                            raw.pred,
                            sig.arity(r),
                            raw.args.len()
                        ));
                    }
                    Pred::Edb(r)
                } else {
                    let i = idb_names
                        .iter()
                        .position(|n| n == &raw.pred)
                        .ok_or_else(|| format!("unknown predicate {}", raw.pred))?;
                    if idb_arity[i] != raw.args.len() {
                        return Err(format!("inconsistent arity for {}", raw.pred));
                    }
                    Pred::Idb(i)
                };
                Ok(Atom {
                    pred,
                    args: raw.args.iter().map(|a| var_of(a, vars)).collect(),
                })
            };
            let mut var_fn = |n: &str, v: &mut Vec<String>| var_of(n, v);
            let h = resolve(head, &mut vars, &mut var_fn)?;
            let b: Result<Vec<Atom>, String> = body
                .iter()
                .map(|a| resolve(a, &mut vars, &mut var_fn))
                .collect();
            rules.push(Rule { head: h, body: b? });
        }
        Ok(Program {
            sig: sig.clone(),
            idb_names,
            idb_arity,
            rules,
        })
    }

    /// The survey's transitive-closure program over the graph signature.
    pub fn transitive_closure() -> Program {
        Program::parse(
            &Signature::graph(),
            "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z).",
        )
        .expect("canned program parses")
    }

    /// The survey's same-generation program over the graph signature
    /// (`e` is the parent→child relation).
    pub fn same_generation() -> Program {
        Program::parse(
            &Signature::graph(),
            "sg(x, x). sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp).",
        )
        .expect("canned program parses")
    }

    /// Index of an IDB predicate by name.
    pub fn idb(&self, name: &str) -> Option<usize> {
        self.idb_names.iter().position(|n| n == name)
    }

    /// Number of IDB predicates.
    pub fn num_idbs(&self) -> usize {
        self.idb_names.len()
    }

    /// Name and arity of an IDB predicate.
    pub fn idb_info(&self, idb: usize) -> (&str, usize) {
        (&self.idb_names[idb], self.idb_arity[idb])
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn check_structure(&self, s: &Structure) {
        assert_eq!(
            s.signature(),
            &self.sig,
            "structure signature does not match program signature"
        );
    }

    /// Naive bottom-up evaluation: apply every rule on the full IDB
    /// extent until nothing new is derived.
    pub fn eval_naive(&self, s: &Structure) -> Output {
        self.check_structure(s);
        let mut rel: Vec<HashSet<Vec<Elem>>> = vec![HashSet::new(); self.idb_names.len()];
        let mut iterations = 0;
        let mut derivations = 0u64;
        loop {
            iterations += 1;
            OBS_NAIVE_ROUNDS.incr();
            let mut new_tuples: Vec<(usize, Vec<Elem>)> = Vec::new();
            for rule in &self.rules {
                self.apply_rule(s, rule, &rel, None, &mut |idb, t| {
                    derivations += 1;
                    if !rel[idb].contains(&t) {
                        new_tuples.push((idb, t));
                    }
                });
            }
            let mut changed = false;
            for (idb, t) in new_tuples {
                changed |= rel[idb].insert(t);
            }
            if !changed {
                break;
            }
        }
        Output {
            relations: rel,
            iterations,
            derivations,
        }
    }

    /// Semi-naive evaluation: recursive rules are re-applied with one
    /// IDB body atom restricted to the last iteration's delta.
    pub fn eval_seminaive(&self, s: &Structure) -> Output {
        self.check_structure(s);
        let k = self.idb_names.len();
        let mut total: Vec<HashSet<Vec<Elem>>> = vec![HashSet::new(); k];
        let mut derivations = 0u64;

        // Initialization: all rules on the empty IDB extent (only rules
        // whose bodies need no IDB facts fire).
        let mut delta: Vec<HashSet<Vec<Elem>>> = vec![HashSet::new(); k];
        for rule in &self.rules {
            self.apply_rule(s, rule, &total, None, &mut |idb, t| {
                derivations += 1;
                delta[idb].insert(t);
            });
        }
        for (t, d) in total.iter_mut().zip(delta.iter()) {
            t.extend(d.iter().cloned());
        }
        let initial_facts: usize = delta.iter().map(HashSet::len).sum();
        OBS_ROUNDS.incr();
        OBS_DELTA_FACTS.add(initial_facts as u64);
        OBS_DELTA_SIZE.record(initial_facts as u64);

        let mut iterations = 1;
        while delta.iter().any(|d| !d.is_empty()) {
            iterations += 1;
            OBS_ROUNDS.incr();
            let mut next: Vec<HashSet<Vec<Elem>>> = vec![HashSet::new(); k];
            for rule in &self.rules {
                // One application per IDB body-atom position, with that
                // atom reading the delta.
                for (pos, atom) in rule.body.iter().enumerate() {
                    if let Pred::Idb(j) = atom.pred {
                        if delta[j].is_empty() {
                            continue;
                        }
                        self.apply_rule(s, rule, &total, Some((pos, &delta)), &mut |idb, t| {
                            derivations += 1;
                            if !total[idb].contains(&t) {
                                next[idb].insert(t);
                            }
                        });
                    }
                }
            }
            for (t, d) in total.iter_mut().zip(next.iter()) {
                t.extend(d.iter().cloned());
            }
            let new_facts: usize = next.iter().map(HashSet::len).sum();
            OBS_DELTA_FACTS.add(new_facts as u64);
            OBS_DELTA_SIZE.record(new_facts as u64);
            delta = next;
        }
        Output {
            relations: total,
            iterations,
            derivations,
        }
    }

    /// Applies one rule: joins the body against the given IDB extent
    /// (with at most one atom redirected to a delta), emitting each head
    /// instantiation. Unbound head variables range over the domain.
    fn apply_rule(
        &self,
        s: &Structure,
        rule: &Rule,
        idb: &[HashSet<Vec<Elem>>],
        delta: Option<(usize, &Vec<HashSet<Vec<Elem>>>)>,
        emit: &mut dyn FnMut(usize, Vec<Elem>),
    ) {
        let num_vars = rule
            .head
            .args
            .iter()
            .chain(rule.body.iter().flat_map(|a| a.args.iter()))
            .max()
            .map_or(0, |&m| m as usize + 1);
        let mut binding: Vec<Option<Elem>> = vec![None; num_vars];
        let head_idb = match rule.head.pred {
            Pred::Idb(i) => i,
            Pred::Edb(_) => unreachable!("heads are IDB by construction"),
        };

        fn emit_head(
            s: &Structure,
            head: &Atom,
            head_idb: usize,
            binding: &mut Vec<Option<Elem>>,
            unbound: &[DlVar],
            i: usize,
            emit: &mut dyn FnMut(usize, Vec<Elem>),
        ) {
            if i == unbound.len() {
                let t: Vec<Elem> = head
                    .args
                    .iter()
                    .map(|&v| binding[v as usize].expect("head var bound"))
                    .collect();
                emit(head_idb, t);
                return;
            }
            for d in s.domain() {
                binding[unbound[i] as usize] = Some(d);
                emit_head(s, head, head_idb, binding, unbound, i + 1, emit);
            }
            binding[unbound[i] as usize] = None;
        }

        #[allow(clippy::too_many_arguments)] // internal join kernel
        fn match_body(
            s: &Structure,
            rule: &Rule,
            idb: &[HashSet<Vec<Elem>>],
            delta: Option<(usize, &Vec<HashSet<Vec<Elem>>>)>,
            head_idb: usize,
            pos: usize,
            binding: &mut Vec<Option<Elem>>,
            emit: &mut dyn FnMut(usize, Vec<Elem>),
        ) {
            if pos == rule.body.len() {
                // Body satisfied: instantiate remaining head variables.
                let unbound: Vec<DlVar> = rule
                    .head
                    .args
                    .iter()
                    .copied()
                    .filter(|&v| binding[v as usize].is_none())
                    .collect();
                let mut dedup = unbound.clone();
                dedup.sort_unstable();
                dedup.dedup();
                emit_head(s, &rule.head, head_idb, binding, &dedup, 0, emit);
                return;
            }
            let atom = &rule.body[pos];
            let try_tuple = |t: &[Elem],
                             binding: &mut Vec<Option<Elem>>,
                             emit: &mut dyn FnMut(usize, Vec<Elem>)| {
                let mut touched: Vec<DlVar> = Vec::new();
                let mut ok = true;
                for (&v, &e) in atom.args.iter().zip(t.iter()) {
                    match binding[v as usize] {
                        Some(b) if b != e => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            binding[v as usize] = Some(e);
                            touched.push(v);
                        }
                    }
                }
                if ok {
                    match_body(s, rule, idb, delta, head_idb, pos + 1, binding, emit);
                }
                for v in touched {
                    binding[v as usize] = None;
                }
            };
            match atom.pred {
                Pred::Edb(r) => {
                    for t in s.rel(r).iter() {
                        try_tuple(t, binding, emit);
                    }
                }
                Pred::Idb(j) => {
                    let source = match delta {
                        Some((dpos, d)) if dpos == pos => &d[j],
                        _ => &idb[j],
                    };
                    // Clone-free iteration requires collecting refs; the
                    // sets are borrowed immutably for the whole match.
                    for t in source.iter() {
                        try_tuple(t, binding, emit);
                    }
                }
            }
        }

        match_body(s, rule, idb, delta, head_idb, 0, &mut binding, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn tc_program_matches_reference() {
        let prog = Program::transitive_closure();
        for s in [
            builders::directed_path(6),
            builders::directed_cycle(5),
            builders::full_binary_tree(3),
        ] {
            let out = prog.eval_naive(&s);
            let tc = prog.idb("tc").unwrap();
            let reference = crate::graph::transitive_closure(&s);
            let e = reference.signature().relation("E").unwrap();
            let expected: HashSet<Vec<Elem>> =
                reference.rel(e).iter().map(|t| t.to_vec()).collect();
            assert_eq!(out.relation(tc), &expected);
        }
    }

    #[test]
    fn seminaive_agrees_with_naive() {
        let progs = [Program::transitive_closure(), Program::same_generation()];
        let structures = [
            builders::directed_path(7),
            builders::full_binary_tree(3),
            builders::directed_cycle(6),
            builders::empty_graph(4),
        ];
        for prog in &progs {
            for s in &structures {
                let a = prog.eval_naive(s);
                let b = prog.eval_seminaive(s);
                for i in 0..prog.num_idbs() {
                    assert_eq!(a.relation(i), b.relation(i), "IDB {i}");
                }
            }
        }
    }

    #[test]
    fn seminaive_does_less_work() {
        let prog = Program::transitive_closure();
        let s = builders::directed_path(24);
        let a = prog.eval_naive(&s);
        let b = prog.eval_seminaive(&s);
        assert!(
            b.derivations < a.derivations,
            "semi-naive {} vs naive {}",
            b.derivations,
            a.derivations
        );
    }

    #[test]
    fn same_generation_on_binary_tree() {
        // Nodes are in the same generation iff at equal depth; on a full
        // binary tree of depth d, level i contributes 2^i × 2^i pairs.
        let d = 3u32;
        let s = builders::full_binary_tree(d);
        let prog = Program::same_generation();
        let out = prog.eval_seminaive(&s);
        let sg = prog.idb("sg").unwrap();
        let expected: u64 = (0..=d).map(|i| (1u64 << i) * (1u64 << i)).sum();
        assert_eq!(out.relation(sg).len() as u64, expected);
        // Spot checks: the two children of the root are same-generation.
        assert!(out.relation(sg).contains(&vec![1, 2]));
        assert!(!out.relation(sg).contains(&vec![0, 1]));
    }

    #[test]
    fn unbound_head_vars_range_over_domain() {
        let sig = Signature::graph();
        let prog = Program::parse(&sig, "all(x, y).").unwrap();
        let s = builders::empty_graph(3);
        let out = prog.eval_naive(&s);
        assert_eq!(out.relation(0).len(), 9);
    }

    #[test]
    fn parser_errors() {
        let sig = Signature::graph();
        assert!(Program::parse(&sig, "").is_err());
        assert!(Program::parse(&sig, "e(x, y) :- e(y, x).").is_err()); // EDB head
        assert!(Program::parse(&sig, "p(x) :- q(x).").is_err()); // unknown q
        assert!(Program::parse(&sig, "p(x). p(x, y).").is_err()); // arity clash
        assert!(Program::parse(&sig, "p(x) :- e(x).").is_err()); // EDB arity
        assert!(Program::parse(&sig, "p(x :- e(x, y).").is_err()); // syntax
    }

    #[test]
    fn repeated_variables_constrain() {
        let sig = Signature::graph();
        // Loops: p(x) :- e(x, x).
        let prog = Program::parse(&sig, "p(x) :- e(x, x).").unwrap();
        let s = builders::directed_cycle(1); // self-loop at 0
        let out = prog.eval_naive(&s);
        assert_eq!(out.relation(0).len(), 1);
        let t = builders::directed_path(4);
        assert!(prog.eval_naive(&t).relation(0).is_empty());
    }

    #[test]
    fn mutual_recursion() {
        let sig = Signature::graph();
        // Even/odd distance from a self-declared start set (all nodes).
        let prog = Program::parse(
            &sig,
            "ev(x, x). od(x, y) :- ev(x, z), e(z, y). ev(x, y) :- od(x, z), e(z, y).",
        )
        .unwrap();
        let s = builders::directed_path(5);
        let out = prog.eval_seminaive(&s);
        let ev = prog.idb("ev").unwrap();
        let od = prog.idb("od").unwrap();
        assert!(out.relation(ev).contains(&vec![0, 2]));
        assert!(out.relation(od).contains(&vec![0, 3]));
        assert!(!out.relation(ev).contains(&vec![0, 3]));
    }

    #[test]
    fn iterations_reported() {
        let prog = Program::transitive_closure();
        let s = builders::directed_path(10);
        let out = prog.eval_seminaive(&s);
        // Path of length 9: deltas shrink over ~9 iterations.
        assert!(out.iterations >= 8, "iterations = {}", out.iterations);
        assert!(out.derivations > 0);
    }
}
