//! A Datalog engine with naive, semi-naive, and indexed/parallel
//! semi-naive evaluation.
//!
//! The survey's same-generation example is a Datalog program:
//!
//! ```text
//! sg(x, x).
//! sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp).
//! ```
//!
//! On a full binary tree of depth `d` its output realizes all degrees
//! `1, 2, 4, …, 2^d` — violating the BNDP, hence not FO-definable
//! (experiment E7). Transitive closure is the other canonical fixpoint
//! query. Both ship as ready-made [`Program`]s; arbitrary programs can
//! be parsed from the textual syntax above.
//!
//! Semantics notes:
//!
//! * EDB predicates are the relations of the input structure, matched
//!   by name case-insensitively (`e` ↦ relation `E`);
//! * nullary predicates are written `p` or `p()`;
//! * head variables not bound by the body range over the **whole
//!   domain** (the paper's `sg(x, x) :-` fact means "for every element
//!   x"), which relaxes the usual range-restriction requirement;
//! * [`Program::eval_naive`] recomputes all rules to fixpoint;
//!   [`Program::eval_seminaive`] focuses each recursive rule on the
//!   latest delta — same fixpoint, far fewer rule instantiations.
//!
//! Evaluation engine (see `docs/join-engine.md` and `docs/storage.md`):
//! rule bodies are joined in a greedy order (most-bound,
//! smallest-extent atom first) and bound-position lookups probe hash or
//! sorted-prefix indexes from [`fmt_structures::index`] instead of
//! rescanning extents; semi-naive rounds fan the per-rule delta
//! applications out across scoped worker threads with hash-sharded
//! deltas. IDB extents live in columnar [`TupleStore`] arenas: the
//! kernel walks `u32` row ids and per-column slices, deltas are row-id
//! ranges of the growing stores, and the steady-state join loop
//! performs no per-derived-tuple heap allocation. The original
//! written-order nested-loop evaluator survives as
//! [`Program::eval_seminaive_scan`] — the baseline the `datalog` bench
//! and the `queries.index.*` counters are compared against, still on
//! the old `HashSet<Vec<Elem>>` representation as a differential
//! oracle.

use fmt_structures::budget::{Budget, BudgetResult, Exhausted};
use fmt_structures::index::{self, ColumnIndex, TupleIndex};
use fmt_structures::par::fan_out;
use fmt_structures::store::{self, TupleStore};
use fmt_structures::{Elem, Interner, RelId, Signature, Span, Structure};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};

/// Budget tick site label shared by all three Datalog engines.
const AT: &str = "queries.datalog";

/// Fixpoint rounds of semi-naive evaluation (the initialization pass
/// counts as round one, mirroring `Output::iterations`).
static OBS_ROUNDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.rounds");
/// New facts discovered across all semi-naive rounds.
static OBS_DELTA_FACTS: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.delta_facts");
/// New facts per semi-naive round (the engine's termination signal).
static OBS_DELTA_SIZE: fmt_obs::Histogram = fmt_obs::Histogram::new("queries.datalog.delta_size");
/// Fixpoint rounds of the naive reference evaluator.
static OBS_NAIVE_ROUNDS: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.naive_rounds");
/// Tuples visited by the written-order nested-loop join of the scan
/// evaluator ([`Program::eval_seminaive_scan`]) — the "old scan
/// counter" the indexed engine's `queries.index.probes` is measured
/// against.
static OBS_SCAN_TUPLES: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.scan_tuples");
/// Per-job fill of the fullest delta shard, as a percentage of the
/// ideal (perfectly balanced) shard size; 100 means perfectly even.
static OBS_SHARD_IMBALANCE: fmt_obs::Histogram =
    fmt_obs::Histogram::new("queries.datalog.shard_imbalance");
/// Rule×delta applications dispatched to parallel workers.
static OBS_PAR_JOBS: fmt_obs::Counter = fmt_obs::Counter::new("queries.datalog.parallel_jobs");

/// A Datalog variable (local to a rule).
type DlVar = u32;

/// A predicate: either an input relation (EDB) or a derived one (IDB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pred {
    /// An EDB predicate: a relation of the input structure.
    Edb(RelId),
    /// An IDB predicate, by index into the program's IDB table.
    Idb(usize),
}

/// An atom `p(v₁, …, vₖ)` in a rule (variables only; repeated variables
/// express equality constraints). A body atom may be negated (`!p(x)`
/// or `not p(x)`), read as stratified set difference: the tuple must be
/// **absent** from the predicate's completed lower-stratum extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The predicate.
    pub pred: Pred,
    /// Argument variables.
    pub args: Vec<DlVar>,
    /// `true` for a negated body atom (heads are never negated).
    pub negated: bool,
}

/// A rule `head :- body₁, …, bodyₖ` (empty body = a fact schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom (always an IDB predicate).
    pub head: Atom,
    /// The body atoms.
    pub body: Vec<Atom>,
}

/// A validated Datalog program over a fixed input signature.
#[derive(Debug, Clone)]
pub struct Program {
    sig: std::sync::Arc<Signature>,
    idb_names: Vec<String>,
    idb_arity: Vec<usize>,
    rules: Vec<Rule>,
}

/// The result of evaluating a program: one tuple set per IDB predicate,
/// plus work counters.
#[derive(Debug, Clone)]
pub struct Output {
    relations: Vec<TupleStore>,
    /// Fixpoint iterations performed.
    pub iterations: usize,
    /// Tuples produced across all rule applications (incl. duplicates).
    pub derivations: u64,
    /// New facts added per fixpoint round (summed over all IDB
    /// predicates), including the final round that added nothing. The
    /// perf harness uses this to model the scan engine's cost exactly.
    pub delta_history: Vec<u64>,
}

impl Output {
    /// The tuples of an IDB predicate, as a columnar [`TupleStore`]
    /// (set semantics live in its `PartialEq`; iterate for the rows).
    pub fn relation(&self, idb: usize) -> &TupleStore {
        &self.relations[idb]
    }
}

pub(crate) fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A Datalog parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogParseError {
    /// Byte offset into the source at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
    /// Byte range of the offending clause, atom, or name
    /// (`offset == span.start`).
    pub span: Span,
}

impl DatalogParseError {
    pub(crate) fn new(span: Span, message: impl Into<String>) -> DatalogParseError {
        DatalogParseError {
            offset: span.start,
            message: message.into(),
            span,
        }
    }
}

impl std::fmt::Display for DatalogParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for DatalogParseError {}

/// Why a budgeted evaluation stopped without an [`Output`]: either the
/// budget ran out mid-fixpoint, or the stratification precheck rejected
/// the program statically — before a single tuple was derived.
///
/// The static cases mirror the `fmt-lint` codes D006 and D007 exactly:
/// a program the linter flags as unstratifiable (D006) or unsafely
/// negated (D007) produces the matching typed error from every engine,
/// never a panic, and vice versa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The budget ran out (see [`Exhausted`]); no partial output is
    /// left behind.
    Exhausted(Exhausted),
    /// A negated body atom lies inside a recursive component of the
    /// predicate dependency graph, so no stratification exists
    /// (lint code D006).
    Unstratifiable {
        /// Rule index of the offending negative dependency edge.
        rule: usize,
        /// Body-atom index of the negated atom inducing it.
        atom: usize,
        /// Name of the negated predicate.
        pred: String,
        /// IDB predicate names of the recursive component the edge
        /// closes, for diagnostics.
        cycle: Vec<String>,
    },
    /// A negated body atom uses a variable that no positive body atom
    /// of the same rule binds (lint code D007).
    UnsafeNegation {
        /// Rule index.
        rule: usize,
        /// Body-atom index of the negated atom.
        atom: usize,
        /// The unbound variable as a rule-local id;
        /// [`ParsedProgram::var_names`] maps it back to its source name.
        var: u32,
    },
}

impl EvalError {
    /// Unwraps the [`EvalError::Exhausted`] case. Panics on the static
    /// stratification errors — for callers that know their program is
    /// negation-free and only budget exhaustion is possible.
    pub fn into_exhausted(self) -> Exhausted {
        match self {
            EvalError::Exhausted(e) => e,
            other => panic!("static evaluation error on a supposedly clean program: {other}"),
        }
    }
}

impl From<Exhausted> for EvalError {
    fn from(e: Exhausted) -> EvalError {
        EvalError::Exhausted(e)
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Exhausted(e) => e.fmt(f),
            EvalError::Unstratifiable {
                rule, pred, cycle, ..
            } => write!(
                f,
                "program is not stratifiable: rule {} negates {} inside the recursive component {{{}}}",
                rule,
                pred,
                cycle.join(", ")
            ),
            EvalError::UnsafeNegation { rule, atom, .. } => write!(
                f,
                "unsafe negation: rule {rule}, body atom {atom} uses a variable no positive atom binds"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Byte spans of one atom: the whole atom, the predicate name, and
/// each argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpans {
    /// The whole atom, `p(x, y)`.
    pub span: Span,
    /// The predicate name.
    pub pred: Span,
    /// One span per argument, aligned with [`Atom::args`].
    pub args: Vec<Span>,
}

/// Byte spans of one rule, aligned with the corresponding [`Rule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpans {
    /// The whole rule, excluding the terminating `.`.
    pub span: Span,
    /// The head atom.
    pub head: AtomSpans,
    /// The body atoms, in order.
    pub body: Vec<AtomSpans>,
}

/// The result of [`Program::parse_spanned`]: the program plus the byte
/// span and source variable names of every rule — the location
/// substrate for `fmt-lint`'s Datalog diagnostics.
#[derive(Debug, Clone)]
pub struct ParsedProgram {
    /// The parsed program.
    pub program: Program,
    /// `spans[i]` mirrors `program.rules()[i]`.
    pub spans: Vec<RuleSpans>,
    /// `var_names[i][v]` is the source name of rule `i`'s variable `v`.
    pub var_names: Vec<Vec<String>>,
}

/// Shrinks a span to the non-whitespace core of the text it covers.
pub(crate) fn trim_span(src: &str, span: Span) -> Span {
    let s = span.slice(src);
    let start = span.start + (s.len() - s.trim_start().len());
    Span::new(start, start + s.trim().len())
}

impl Program {
    /// Parses a program; each line is `head :- a1, a2, ... .` or a
    /// body-less `head.` / `head :- .`. Predicates matching a relation
    /// name of `sig` (case-insensitively) are EDB; all others must
    /// appear in some head and are IDB. Nullary atoms are written `p`
    /// or `p()`. Errors are flattened to strings; see
    /// [`Program::parse_spanned`] for positions and spans.
    pub fn parse(sig: &std::sync::Arc<Signature>, src: &str) -> Result<Program, String> {
        Program::parse_spanned(sig, src)
            .map(|p| p.program)
            .map_err(|e| e.to_string())
    }

    /// Parses a program, returning it together with the byte span of
    /// every rule, atom, predicate name, and argument, plus the
    /// per-rule variable-name tables. Every error carries the byte
    /// range it was detected at.
    pub fn parse_spanned(
        sig: &std::sync::Arc<Signature>,
        src: &str,
    ) -> Result<ParsedProgram, DatalogParseError> {
        struct RawAtom {
            pred: String,
            args: Vec<String>,
            negated: bool,
            span: Span,
            pred_span: Span,
            arg_spans: Vec<Span>,
        }
        fn parse_atom(src: &str, span: Span) -> Result<RawAtom, DatalogParseError> {
            // A `!` or `not ` prefix marks a negated atom; the atom's
            // span keeps the prefix so diagnostics underline all of
            // `!p(x)`, while the predicate and argument spans come from
            // the bare atom after it.
            let outer = trim_span(src, span);
            let prefix = outer.slice(src);
            let (negated, span) = if prefix.starts_with('!') {
                (true, trim_span(src, Span::new(outer.start + 1, outer.end)))
            } else if prefix.len() > 3
                && prefix.starts_with("not")
                && prefix.as_bytes()[3].is_ascii_whitespace()
            {
                (true, trim_span(src, Span::new(outer.start + 3, outer.end)))
            } else {
                (false, outer)
            };
            let t = span.slice(src);
            let Some(open) = t.find('(') else {
                // No argument list at all: a nullary atom, provided the
                // whole token is a plain identifier.
                if is_ident(t) {
                    return Ok(RawAtom {
                        pred: t.to_owned(),
                        args: Vec::new(),
                        negated,
                        span: outer,
                        pred_span: span,
                        arg_spans: Vec::new(),
                    });
                }
                return Err(DatalogParseError::new(
                    span,
                    format!("missing '(' in {t:?}"),
                ));
            };
            let close = t
                .rfind(')')
                .filter(|&c| c > open)
                .ok_or_else(|| DatalogParseError::new(span, format!("missing ')' in {t:?}")))?;
            let pred_span = trim_span(src, Span::new(span.start, span.start + open));
            let pred = pred_span.slice(src).to_owned();
            if pred.is_empty() {
                return Err(DatalogParseError::new(
                    Span::point(span.start + open),
                    format!("empty predicate name in {t:?}"),
                ));
            }
            let inner_span = trim_span(src, Span::new(span.start + open + 1, span.start + close));
            let mut args = Vec::new();
            let mut arg_spans = Vec::new();
            if !inner_span.is_empty() {
                // Split the argument list on commas (atoms are flat).
                let inner = inner_span.slice(src);
                let bytes = inner.as_bytes();
                let mut piece_start = inner_span.start;
                for i in 0..=bytes.len() {
                    if i < bytes.len() && bytes[i] != b',' {
                        continue;
                    }
                    let a = trim_span(src, Span::new(piece_start, inner_span.start + i));
                    if a.is_empty() {
                        return Err(DatalogParseError::new(
                            a,
                            format!("empty argument in {t:?}"),
                        ));
                    }
                    args.push(a.slice(src).to_owned());
                    arg_spans.push(a);
                    piece_start = inner_span.start + i + 1;
                }
            }
            Ok(RawAtom {
                pred,
                args,
                negated,
                span: outer,
                pred_span,
                arg_spans,
            })
        }

        // Split on '.' (a missing final dot is tolerated), keeping the
        // byte range of every clause.
        let mut raw_rules: Vec<(RawAtom, Vec<RawAtom>, Span)> = Vec::new();
        let bytes = src.as_bytes();
        let mut clause_start = 0usize;
        for i in 0..=bytes.len() {
            if i < bytes.len() && bytes[i] != b'.' {
                continue;
            }
            let clause = trim_span(src, Span::new(clause_start, i));
            clause_start = i + 1;
            if clause.is_empty() {
                continue;
            }
            let text = clause.slice(src);
            let (head_span, body_span) = match text.find(":-") {
                Some(p) => (
                    Span::new(clause.start, clause.start + p),
                    Some(trim_span(src, Span::new(clause.start + p + 2, clause.end))),
                ),
                None => (clause, None),
            };
            let head = parse_atom(src, head_span)?;
            let mut body = Vec::new();
            if let Some(bs) = body_span.filter(|b| !b.is_empty()) {
                // Split body on commas at depth zero.
                let bbytes = bs.slice(src).as_bytes().to_vec();
                let mut depth = 0usize;
                let mut start = bs.start;
                for (j, &c) in bbytes.iter().enumerate() {
                    match c {
                        b'(' => depth += 1,
                        b')' => depth = depth.saturating_sub(1),
                        b',' if depth == 0 => {
                            body.push(parse_atom(src, Span::new(start, bs.start + j))?);
                            start = bs.start + j + 1;
                        }
                        _ => {}
                    }
                }
                body.push(parse_atom(src, Span::new(start, bs.end))?);
            }
            raw_rules.push((head, body, clause));
        }
        if raw_rules.is_empty() {
            return Err(DatalogParseError::new(Span::point(0), "empty program"));
        }

        let lookup_edb = |name: &str| -> Option<RelId> {
            sig.relations()
                .find(|(_, n, _)| n.eq_ignore_ascii_case(name))
                .map(|(r, _, _)| r)
        };

        // IDB predicates: all head predicates, in order of appearance.
        let mut idb_names: Vec<String> = Vec::new();
        let mut idb_arity: Vec<usize> = Vec::new();
        for (head, _, _) in &raw_rules {
            if head.negated {
                return Err(DatalogParseError::new(
                    head.span,
                    format!("rule head {} cannot be negated", head.pred),
                ));
            }
            if lookup_edb(&head.pred).is_some() {
                return Err(DatalogParseError::new(
                    head.pred_span,
                    format!("cannot redefine EDB predicate {}", head.pred),
                ));
            }
            match idb_names.iter().position(|n| n == &head.pred) {
                Some(i) => {
                    if idb_arity[i] != head.args.len() {
                        return Err(DatalogParseError::new(
                            head.span,
                            format!("inconsistent arity for {}", head.pred),
                        ));
                    }
                }
                None => {
                    idb_names.push(head.pred.clone());
                    idb_arity.push(head.args.len());
                }
            }
        }
        // A *negated* body atom may name a predicate with no defining
        // rule: it is registered as a rule-less IDB (empty extent, so
        // the negation is vacuously true — lint code D008 flags it).
        // Positive references to unknown predicates remain errors.
        for (_, body, _) in &raw_rules {
            for raw in body {
                if !raw.negated || lookup_edb(&raw.pred).is_some() {
                    continue;
                }
                match idb_names.iter().position(|n| n == &raw.pred) {
                    Some(i) => {
                        if idb_arity[i] != raw.args.len() {
                            return Err(DatalogParseError::new(
                                raw.span,
                                format!("inconsistent arity for {}", raw.pred),
                            ));
                        }
                    }
                    None => {
                        idb_names.push(raw.pred.clone());
                        idb_arity.push(raw.args.len());
                    }
                }
            }
        }

        let mut rules = Vec::new();
        let mut spans = Vec::new();
        let mut var_names = Vec::new();
        let atom_spans = |raw: &RawAtom| AtomSpans {
            span: raw.span,
            pred: raw.pred_span,
            args: raw.arg_spans.clone(),
        };
        for (head, body, clause) in &raw_rules {
            // Per-rule variable table: source names interned to dense
            // ids in first-occurrence order (head first, then body).
            let mut vars = Interner::new();
            let resolve = |raw: &RawAtom, vars: &mut Interner| -> Result<Atom, DatalogParseError> {
                let pred = if let Some(r) = lookup_edb(&raw.pred) {
                    if sig.arity(r) != raw.args.len() {
                        return Err(DatalogParseError::new(
                            raw.span,
                            format!(
                                "EDB predicate {} has arity {}, atom has {}",
                                raw.pred,
                                sig.arity(r),
                                raw.args.len()
                            ),
                        ));
                    }
                    Pred::Edb(r)
                } else {
                    let i = idb_names
                        .iter()
                        .position(|n| n == &raw.pred)
                        .ok_or_else(|| {
                            DatalogParseError::new(
                                raw.pred_span,
                                format!("unknown predicate {}", raw.pred),
                            )
                        })?;
                    if idb_arity[i] != raw.args.len() {
                        return Err(DatalogParseError::new(
                            raw.span,
                            format!("inconsistent arity for {}", raw.pred),
                        ));
                    }
                    Pred::Idb(i)
                };
                Ok(Atom {
                    pred,
                    args: raw.args.iter().map(|a| vars.intern(a)).collect(),
                    negated: raw.negated,
                })
            };
            let h = resolve(head, &mut vars)?;
            let b: Result<Vec<Atom>, DatalogParseError> =
                body.iter().map(|a| resolve(a, &mut vars)).collect();
            rules.push(Rule { head: h, body: b? });
            spans.push(RuleSpans {
                span: *clause,
                head: atom_spans(head),
                body: body.iter().map(atom_spans).collect(),
            });
            var_names.push(vars.into_names());
        }
        Ok(ParsedProgram {
            program: Program {
                sig: sig.clone(),
                idb_names,
                idb_arity,
                rules,
            },
            spans,
            var_names,
        })
    }

    /// Assembles a program directly from resolved parts — the back door
    /// used by [`crate::magic`]'s rewriter, which synthesizes adorned
    /// and `magic_*` predicates that have no source text to parse.
    /// Callers are responsible for the parser's invariants: head
    /// predicates are IDBs, arities are consistent, and every
    /// `Pred::Idb` index is in range.
    pub(crate) fn from_parts(
        sig: std::sync::Arc<Signature>,
        idb_names: Vec<String>,
        idb_arity: Vec<usize>,
        rules: Vec<Rule>,
    ) -> Program {
        Program {
            sig,
            idb_names,
            idb_arity,
            rules,
        }
    }

    /// The input signature the program was parsed against.
    pub fn signature(&self) -> &std::sync::Arc<Signature> {
        &self.sig
    }

    /// The survey's transitive-closure program over the graph signature.
    pub fn transitive_closure() -> Program {
        Program::parse(
            &Signature::graph(),
            "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z).",
        )
        .expect("canned program parses")
    }

    /// The survey's same-generation program over the graph signature
    /// (`e` is the parent→child relation).
    pub fn same_generation() -> Program {
        Program::parse(
            &Signature::graph(),
            "sg(x, x). sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp).",
        )
        .expect("canned program parses")
    }

    /// Index of an IDB predicate by name.
    pub fn idb(&self, name: &str) -> Option<usize> {
        self.idb_names.iter().position(|n| n == name)
    }

    /// Number of IDB predicates.
    pub fn num_idbs(&self) -> usize {
        self.idb_names.len()
    }

    /// Name and arity of an IDB predicate.
    pub fn idb_info(&self, idb: usize) -> (&str, usize) {
        (&self.idb_names[idb], self.idb_arity[idb])
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// `true` if any body atom is negated. Negation-free programs skip
    /// the dependency analysis entirely and evaluate on the exact
    /// pre-stratification path.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(|r| r.body.iter().any(|a| a.negated))
    }

    /// Rule indices grouped by evaluation stratum, lowest first — the
    /// driver schedule shared by all three engines. Negation-free
    /// programs short-circuit to a single stratum holding every rule in
    /// written order (bit-identical to the pre-stratification engines);
    /// otherwise the [`crate::depgraph`] analysis runs and
    /// unstratifiable or unsafe programs are rejected with a typed
    /// error.
    pub(crate) fn eval_strata(&self) -> Result<Vec<Vec<usize>>, EvalError> {
        if !self.has_negation() {
            return Ok(vec![(0..self.rules.len()).collect()]);
        }
        let analysis = crate::depgraph::DepAnalysis::of(self);
        if let Some(v) = analysis.violations.first() {
            return Err(EvalError::Unstratifiable {
                rule: v.rule,
                atom: v.atom,
                pred: self.idb_info(v.dep).0.to_owned(),
                cycle: analysis.sccs[analysis.scc_of[v.dep]]
                    .iter()
                    .map(|&j| self.idb_info(j).0.to_owned())
                    .collect(),
            });
        }
        if let Some(u) = analysis.unsafe_negs.first() {
            return Err(EvalError::UnsafeNegation {
                rule: u.rule,
                atom: u.atom,
                var: u.var,
            });
        }
        let strat = analysis
            .stratification
            .expect("violation-free analyses carry a stratification");
        Ok(strat.rules_by_stratum)
    }

    fn check_structure(&self, s: &Structure) {
        assert_eq!(
            s.signature(),
            &self.sig,
            "structure signature does not match program signature"
        );
    }

    fn new_store(&self) -> Vec<IdbStore> {
        self.idb_arity.iter().map(|&a| IdbStore::new(a)).collect()
    }

    /// Naive bottom-up evaluation: apply every rule on the full IDB
    /// extent until nothing new is derived, stratum by stratum for
    /// programs with negation. Rule bodies are joined in greedy
    /// index-probing order (same answers as written order).
    ///
    /// # Panics
    /// Panics if the program is unstratifiable or uses unsafe negation;
    /// use [`Program::try_eval_naive`] for a typed [`EvalError`].
    pub fn eval_naive(&self, s: &Structure) -> Output {
        self.try_eval_naive(s, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust and program must be stratifiable")
    }

    /// Budgeted [`Program::eval_naive`]: consults `budget` on every
    /// join step and stops cleanly with [`EvalError::Exhausted`] when
    /// it runs out, leaving no partial output behind. Programs with
    /// negation are stratified first; unstratifiable or unsafe ones are
    /// rejected with the matching static [`EvalError`] before any
    /// evaluation work.
    pub fn try_eval_naive(&self, s: &Structure, budget: &Budget) -> Result<Output, EvalError> {
        self.check_structure(s);
        let strata = self.eval_strata()?;
        let mut eval_span =
            fmt_obs::trace_span!("datalog.eval", engine = "naive", rules = self.rules.len());
        let k = self.idb_names.len();
        let mut store = self.new_store();
        let mut edb = EdbCache::default();
        let mut iterations = 0;
        let mut derivations = 0u64;
        let mut delta_history = Vec::new();
        for rules_in in &strata {
            loop {
                iterations += 1;
                OBS_NAIVE_ROUNDS.incr();
                let mut round_span = fmt_obs::trace_span!("datalog.round", round = iterations);
                // Candidate new tuples, staged per IDB in flat buffers (the
                // counts carry nullary facts, whose rows occupy no bytes).
                let mut bufs: Vec<Vec<Elem>> = vec![Vec::new(); k];
                let mut counts: Vec<usize> = vec![0; k];
                for &ri in rules_in {
                    let rule = &self.rules[ri];
                    let mut rule_span =
                        fmt_obs::trace_span!("datalog.rule", rule = ri, round = iterations);
                    let plan = plan_rule(rule, None, s, &store);
                    ensure_plan_indexes(&plan, rule, s, &mut edb, &mut store);
                    let ctx = ExecCtx {
                        s,
                        rule,
                        plan: &plan,
                        edb: &edb,
                        store: &store,
                        driver: &[],
                        head_idb: head_idb(rule),
                        probes: Cell::new(0),
                        probe_allocs: Cell::new(0),
                    };
                    let mut binding = vec![None; rule_num_vars(rule)];
                    let mut rule_derived = 0u64;
                    let store_ref = &store;
                    exec(&ctx, 0, &mut binding, budget, &mut |idb, t| {
                        rule_derived += 1;
                        if !store_ref[idb].store.contains(t) {
                            bufs[idb].extend_from_slice(t);
                            counts[idb] += 1;
                        }
                    })?;
                    derivations += rule_derived;
                    rule_span.record_field("probes", ctx.probes.get());
                    rule_span.record_field("derived", rule_derived);
                    rule_span.record_field("probe_allocs", ctx.probe_allocs.get());
                }
                let mut added = 0u64;
                for (j, (buf, &cnt)) in bufs.iter().zip(counts.iter()).enumerate() {
                    let a = self.idb_arity[j];
                    for i in 0..cnt {
                        if store[j]
                            .store
                            .push_if_new(&buf[i * a..(i + 1) * a])
                            .is_some()
                        {
                            added += 1;
                        }
                    }
                }
                for r in store.iter_mut() {
                    r.extend_indexes();
                }
                delta_history.push(added);
                round_span.record_field("new", added);
                if added == 0 {
                    break;
                }
            }
        }
        eval_span.record_field("rounds", iterations);
        eval_span.record_field("derivations", derivations);
        Ok(Output {
            relations: store.into_iter().map(|r| r.store).collect(),
            iterations,
            derivations,
            delta_history,
        })
    }

    /// Semi-naive evaluation with the indexed, join-ordered, parallel
    /// engine and an automatic worker count
    /// (`min(available_parallelism, 8)`).
    pub fn eval_seminaive(&self, s: &Structure) -> Output {
        self.eval_seminaive_with(s, 0)
    }

    /// Semi-naive evaluation: recursive rules are re-applied with one
    /// IDB body atom restricted to the last iteration's delta, joined
    /// in greedy index-probing order, with the per-round rule×delta
    /// applications hash-sharded across `threads` scoped workers
    /// (`0` = automatic). Small rounds run inline — sharding only pays
    /// once a round carries enough delta tuples.
    pub fn eval_seminaive_with(&self, s: &Structure, threads: usize) -> Output {
        self.try_eval_seminaive_with(s, threads, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust and program must be stratifiable")
    }

    /// Budgeted [`Program::eval_seminaive_with`]: every worker shard
    /// shares `budget` (one cheap clone each), so fuel exhaustion or an
    /// external [`Budget::cancel`] stops all shards cooperatively — the
    /// first shard to observe exhaustion makes every other shard's next
    /// tick fail too. Programs with negation evaluate stratum by
    /// stratum (negated atoms probe the completed lower strata);
    /// unstratifiable or unsafe ones are rejected with a static
    /// [`EvalError`] before any evaluation work.
    pub fn try_eval_seminaive_with(
        &self,
        s: &Structure,
        threads: usize,
        budget: &Budget,
    ) -> Result<Output, EvalError> {
        self.check_structure(s);
        let strata = self.eval_strata()?;
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
                .min(8)
        } else {
            threads
        };
        let k = self.idb_names.len();
        let mut eval_span = fmt_obs::trace_span!(
            "datalog.eval",
            engine = "indexed",
            rules = self.rules.len(),
            threads = threads
        );
        let mut store = self.new_store();
        let mut edb = EdbCache::default();
        let mut derivations = 0u64;
        let mut delta_history: Vec<u64> = Vec::new();
        let mut iterations = 0usize;
        // Per-IDB delta as a row-id range `[start, end)` of the store:
        // row ids are stable under append, so no tuple is ever copied
        // into a separate delta set. Lower-stratum extents stop growing
        // once their stratum completes, so their ranges stay empty and
        // never spawn jobs again.
        let mut delta: Vec<(u32, u32)> = vec![(0, 0); k];
        // Plans are cached per (rule, delta position) for the whole
        // evaluation; the indexes they probe are kept current by the
        // per-round merge, so re-planning each round buys nothing.
        let mut plans: Vec<Vec<Step>> = Vec::new();
        let mut plan_of: HashMap<(usize, usize), usize> = HashMap::new();

        for rules_in in &strata {
            // Stratum initialization: this stratum's rules on the full
            // extents of the completed lower strata (and the empty
            // extents of its own heads; on a negation-free program this
            // is exactly the old all-rules-on-empty-IDB pass). Cheap —
            // run inline. Emissions are staged in flat per-IDB buffers
            // (counts carry nullary facts) and deduplicated by the
            // stores on merge.
            let init_span = fmt_obs::trace_span!("datalog.init");
            let len_pre: Vec<u32> = store.iter().map(|r| r.store.len32()).collect();
            let mut bufs: Vec<Vec<Elem>> = vec![Vec::new(); k];
            let mut counts: Vec<usize> = vec![0; k];
            for &ri in rules_in {
                let rule = &self.rules[ri];
                let mut rule_span =
                    fmt_obs::trace_span!("datalog.rule", rule = ri, round = iterations + 1);
                let plan = plan_rule(rule, None, s, &store);
                ensure_plan_indexes(&plan, rule, s, &mut edb, &mut store);
                let ctx = ExecCtx {
                    s,
                    rule,
                    plan: &plan,
                    edb: &edb,
                    store: &store,
                    driver: &[],
                    head_idb: head_idb(rule),
                    probes: Cell::new(0),
                    probe_allocs: Cell::new(0),
                };
                let mut binding = vec![None; rule_num_vars(rule)];
                let mut rule_derived = 0u64;
                let staged0: usize = bufs.iter().map(Vec::len).sum();
                exec(&ctx, 0, &mut binding, budget, &mut |idb, t| {
                    rule_derived += 1;
                    bufs[idb].extend_from_slice(t);
                    counts[idb] += 1;
                })?;
                derivations += rule_derived;
                let staged: usize = bufs.iter().map(Vec::len).sum::<usize>() - staged0;
                rule_span.record_field("probes", ctx.probes.get());
                rule_span.record_field("derived", rule_derived);
                rule_span.record_field("probe_allocs", ctx.probe_allocs.get());
                rule_span.record_field("arena_bytes", (staged * ELEM_BYTES) as u64);
            }
            let mut initial_facts = 0u64;
            for (j, (buf, &cnt)) in bufs.iter().zip(counts.iter()).enumerate() {
                let a = self.idb_arity[j];
                for i in 0..cnt {
                    if store[j]
                        .store
                        .push_if_new(&buf[i * a..(i + 1) * a])
                        .is_some()
                    {
                        initial_facts += 1;
                    }
                }
            }
            for r in store.iter_mut() {
                r.extend_indexes();
            }
            drop(init_span);
            iterations += 1;
            OBS_ROUNDS.incr();
            OBS_DELTA_FACTS.add(initial_facts);
            OBS_DELTA_SIZE.record(initial_facts);
            delta_history.push(initial_facts);
            for (j, d) in delta.iter_mut().enumerate() {
                *d = (len_pre[j], store[j].store.len32());
            }

            while delta.iter().any(|&(d0, d1)| d1 > d0) {
                iterations += 1;
                OBS_ROUNDS.incr();
                let total_delta: usize = delta.iter().map(|&(d0, d1)| (d1 - d0) as usize).sum();
                let mut round_span =
                    fmt_obs::trace_span!("datalog.round", round = iterations, delta = total_delta);

                // One job per (rule, positive IDB body position) with a
                // nonempty delta; plan on first sight, then build every
                // index the plan needs so the fan-out below can share
                // the caches immutably. Negated atoms never drive a
                // delta — their extents are frozen lower strata.
                let plan_span = fmt_obs::trace_span!("datalog.plan");
                let mut jobs: Vec<(usize, usize, usize)> = Vec::new();
                for &ri in rules_in {
                    let rule = &self.rules[ri];
                    for (pos, atom) in rule.body.iter().enumerate() {
                        if atom.negated {
                            continue;
                        }
                        if let Pred::Idb(j) = atom.pred {
                            let (d0, d1) = delta[j];
                            if d1 == d0 {
                                continue;
                            }
                            let pi = match plan_of.get(&(ri, pos)) {
                                Some(&pi) => pi,
                                None => {
                                    let plan = plan_rule(rule, Some(pos), s, &store);
                                    ensure_plan_indexes(&plan, rule, s, &mut edb, &mut store);
                                    plans.push(plan);
                                    plan_of.insert((ri, pos), plans.len() - 1);
                                    plans.len() - 1
                                }
                            };
                            jobs.push((ri, pos, pi));
                        }
                    }
                }
                OBS_PAR_JOBS.add(jobs.len() as u64);

                // Hash-shard each job's delta row ids; small rounds stay
                // unsharded. Row hashes come from the store's arenas — the
                // same FNV fold the old per-tuple sharding used.
                let nshards = if threads == 1 || total_delta < 512 {
                    1
                } else {
                    threads
                };
                let mut items: Vec<(usize, Vec<u32>)> = Vec::new();
                for (ji, &(ri, pos, _)) in jobs.iter().enumerate() {
                    let Pred::Idb(j) = self.rules[ri].body[pos].pred else {
                        unreachable!("jobs are delta-driven")
                    };
                    let (d0, d1) = delta[j];
                    if nshards == 1 {
                        items.push((ji, (d0..d1).collect()));
                        continue;
                    }
                    let st = &store[j].store;
                    let per_shard = ((d1 - d0) as usize / nshards + 1) * 2;
                    let mut shards: Vec<Vec<u32>> = vec![Vec::with_capacity(per_shard); nshards];
                    for row in d0..d1 {
                        shards[(st.row_hash(row) % nshards as u64) as usize].push(row);
                    }
                    let ideal = ((d1 - d0) as usize).div_ceil(nshards).max(1);
                    let fullest = shards.iter().map(Vec::len).max().unwrap_or(0);
                    OBS_SHARD_IMBALANCE.record((fullest * 100 / ideal) as u64);
                    items.extend(
                        shards
                            .into_iter()
                            .filter(|sh| !sh.is_empty())
                            .map(|sh| (ji, sh)),
                    );
                }
                drop(plan_span);

                // Fan out; each worker stages derived tuples in flat
                // per-IDB buffers — no per-tuple allocation anywhere in
                // the loop, and no dedup here: `push_if_new` on merge does
                // one hash per staged tuple, so pre-filtering against the
                // frozen extent would only add a second hash. Results
                // merge in item order, so the engine is deterministic for
                // any thread count. Worker rule spans attach under this
                // round's join span through fan_out's parent propagation.
                let join_span = fmt_obs::trace_span!("datalog.join", jobs = jobs.len());
                let store_ref = &store;
                let plans_ref = &plans;
                let results = fan_out(threads, &items, |chunk| -> BudgetResult<_> {
                    let mut derivs = 0u64;
                    let mut bufs: Vec<Vec<Elem>> = vec![Vec::new(); k];
                    let mut counts: Vec<usize> = vec![0; k];
                    for (ji, shard) in chunk {
                        let (ri, pos, pi) = jobs[*ji];
                        let rule = &self.rules[ri];
                        let mut rule_span = fmt_obs::trace_span!(
                            "datalog.rule",
                            rule = ri,
                            pos = pos,
                            round = iterations,
                            tuples = shard.len()
                        );
                        let ctx = ExecCtx {
                            s,
                            rule,
                            plan: &plans_ref[pi],
                            edb: &edb,
                            store: store_ref,
                            driver: shard,
                            head_idb: head_idb(rule),
                            probes: Cell::new(0),
                            probe_allocs: Cell::new(0),
                        };
                        let mut binding = vec![None; rule_num_vars(rule)];
                        let mut rule_derived = 0u64;
                        let staged0: usize = bufs.iter().map(Vec::len).sum();
                        exec(&ctx, 0, &mut binding, budget, &mut |idb, t| {
                            rule_derived += 1;
                            bufs[idb].extend_from_slice(t);
                            counts[idb] += 1;
                        })?;
                        derivs += rule_derived;
                        let staged: usize = bufs.iter().map(Vec::len).sum::<usize>() - staged0;
                        rule_span.record_field("probes", ctx.probes.get());
                        rule_span.record_field("derived", rule_derived);
                        rule_span.record_field("probe_allocs", ctx.probe_allocs.get());
                        rule_span.record_field("arena_bytes", (staged * ELEM_BYTES) as u64);
                    }
                    Ok((derivs, bufs, counts))
                });
                drop(join_span);

                // Dedup: drain worker buffers in item order straight into
                // the stores — push_if_new is the hash-set insert and the
                // arena append in one step.
                let dedup_span = fmt_obs::trace_span!("datalog.dedup");
                let len_before: Vec<u32> = store.iter().map(|r| r.store.len32()).collect();
                let mut new_facts = 0u64;
                for chunk_result in results {
                    let (derivs, bufs, counts) = chunk_result?;
                    derivations += derivs;
                    for (j, (buf, &cnt)) in bufs.iter().zip(counts.iter()).enumerate() {
                        let a = self.idb_arity[j];
                        for i in 0..cnt {
                            if store[j]
                                .store
                                .push_if_new(&buf[i * a..(i + 1) * a])
                                .is_some()
                            {
                                new_facts += 1;
                            }
                        }
                    }
                }
                drop(dedup_span);
                // Merge: indexes catch up to the appended rows, and the
                // new delta is just the appended row-id range.
                let merge_span = fmt_obs::trace_span!("datalog.merge");
                for (j, d) in delta.iter_mut().enumerate() {
                    store[j].extend_indexes();
                    *d = (len_before[j], store[j].store.len32());
                }
                drop(merge_span);
                OBS_DELTA_FACTS.add(new_facts);
                OBS_DELTA_SIZE.record(new_facts);
                delta_history.push(new_facts);
                round_span.record_field("new", new_facts);
            }
        }
        eval_span.record_field("rounds", iterations);
        eval_span.record_field("derivations", derivations);
        Ok(Output {
            relations: store.into_iter().map(|r| r.store).collect(),
            iterations,
            derivations,
            delta_history,
        })
    }

    /// Semi-naive evaluation by the original written-order nested-loop
    /// join — no indexes, no reordering, no parallelism. Kept as the
    /// measured baseline for the indexed engine (its per-tuple work is
    /// the `queries.datalog.scan_tuples` counter).
    pub fn eval_seminaive_scan(&self, s: &Structure) -> Output {
        self.try_eval_seminaive_scan(s, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust and program must be stratifiable")
    }

    /// Budgeted [`Program::eval_seminaive_scan`]. Programs with
    /// negation evaluate stratum by stratum, with negated atoms checked
    /// as `HashSet` membership against the completed lower strata — an
    /// implementation deliberately independent of the indexed kernel's
    /// anti-join probes.
    pub fn try_eval_seminaive_scan(
        &self,
        s: &Structure,
        budget: &Budget,
    ) -> Result<Output, EvalError> {
        self.check_structure(s);
        let strata = self.eval_strata()?;
        let mut eval_span =
            fmt_obs::trace_span!("datalog.eval", engine = "scan", rules = self.rules.len());
        let k = self.idb_names.len();
        let mut total: Vec<HashSet<Vec<Elem>>> = vec![HashSet::new(); k];
        let mut derivations = 0u64;
        let mut delta_history: Vec<u64> = Vec::new();
        let mut iterations = 0usize;

        for rules_in in &strata {
            // Stratum initialization: this stratum's rules on the
            // completed lower strata (their own heads are still empty).
            let init_span = fmt_obs::trace_span!("datalog.init");
            let mut delta: Vec<HashSet<Vec<Elem>>> = vec![HashSet::new(); k];
            for &ri in rules_in {
                let rule = &self.rules[ri];
                let mut rule_span =
                    fmt_obs::trace_span!("datalog.rule", rule = ri, round = iterations + 1);
                let mut rule_derived = 0u64;
                self.apply_rule_scan(s, rule, &total, None, budget, &mut |idb, t| {
                    rule_derived += 1;
                    delta[idb].insert(t);
                })?;
                derivations += rule_derived;
                rule_span.record_field("derived", rule_derived);
            }
            for (t, d) in total.iter_mut().zip(delta.iter()) {
                t.extend(d.iter().cloned());
            }
            drop(init_span);
            let initial_facts: usize = delta.iter().map(HashSet::len).sum();
            iterations += 1;
            OBS_ROUNDS.incr();
            OBS_DELTA_FACTS.add(initial_facts as u64);
            OBS_DELTA_SIZE.record(initial_facts as u64);
            delta_history.push(initial_facts as u64);

            while delta.iter().any(|d| !d.is_empty()) {
                iterations += 1;
                OBS_ROUNDS.incr();
                let total_delta: usize = delta.iter().map(HashSet::len).sum();
                let mut round_span =
                    fmt_obs::trace_span!("datalog.round", round = iterations, delta = total_delta);
                let mut next: Vec<HashSet<Vec<Elem>>> = vec![HashSet::new(); k];
                for &ri in rules_in {
                    let rule = &self.rules[ri];
                    // One application per positive IDB body-atom
                    // position, with that atom reading the delta
                    // (negated atoms are membership checks, never
                    // delta drivers).
                    for (pos, atom) in rule.body.iter().enumerate() {
                        if atom.negated {
                            continue;
                        }
                        if let Pred::Idb(j) = atom.pred {
                            if delta[j].is_empty() {
                                continue;
                            }
                            let mut rule_span = fmt_obs::trace_span!(
                                "datalog.rule",
                                rule = ri,
                                pos = pos,
                                round = iterations,
                                tuples = delta[j].len()
                            );
                            let mut rule_derived = 0u64;
                            self.apply_rule_scan(
                                s,
                                rule,
                                &total,
                                Some((pos, &delta)),
                                budget,
                                &mut |idb, t| {
                                    rule_derived += 1;
                                    if !total[idb].contains(&t) {
                                        next[idb].insert(t);
                                    }
                                },
                            )?;
                            derivations += rule_derived;
                            rule_span.record_field("derived", rule_derived);
                        }
                    }
                }
                for (t, d) in total.iter_mut().zip(next.iter()) {
                    t.extend(d.iter().cloned());
                }
                let new_facts: usize = next.iter().map(HashSet::len).sum();
                OBS_DELTA_FACTS.add(new_facts as u64);
                OBS_DELTA_SIZE.record(new_facts as u64);
                delta_history.push(new_facts as u64);
                round_span.record_field("new", new_facts);
                delta = next;
            }
        }
        eval_span.record_field("rounds", iterations);
        eval_span.record_field("derivations", derivations);
        // The scan engine keeps its legacy HashSet representation as a
        // differential oracle; only the output is columnar.
        Ok(Output {
            relations: total
                .iter()
                .zip(self.idb_arity.iter())
                .map(|(set, &a)| TupleStore::from_rows(a, set.iter().map(Vec::as_slice)))
                .collect(),
            iterations,
            derivations,
            delta_history,
        })
    }

    /// Applies one rule by written-order nested loops: joins the body
    /// against the given IDB extent (with at most one atom redirected
    /// to a delta), emitting each head instantiation. Unbound head
    /// variables range over the domain. Negated atoms are deferred to
    /// the end of the join order (positives in written order first) and
    /// checked as plain membership tests — safety guarantees all their
    /// variables are bound by then. Deliberately kept on the legacy
    /// materialized-tuple path: the scan engine is the independent
    /// differential oracle for the columnar kernel.
    fn apply_rule_scan(
        &self,
        s: &Structure,
        rule: &Rule,
        idb: &[HashSet<Vec<Elem>>],
        delta: Option<(usize, &Vec<HashSet<Vec<Elem>>>)>,
        budget: &Budget,
        emit: &mut dyn FnMut(usize, Vec<Elem>),
    ) -> BudgetResult<()> {
        let mut binding: Vec<Option<Elem>> = vec![None; rule_num_vars(rule)];
        let head = head_idb(rule);
        // Positive atoms in written order, then the negated checks (a
        // negation-free body keeps the exact original order).
        let mut order: Vec<usize> = (0..rule.body.len())
            .filter(|&i| !rule.body[i].negated)
            .collect();
        order.extend((0..rule.body.len()).filter(|&i| rule.body[i].negated));

        #[allow(clippy::too_many_arguments)] // internal join kernel
        fn match_body(
            s: &Structure,
            rule: &Rule,
            order: &[usize],
            idb: &[HashSet<Vec<Elem>>],
            delta: Option<(usize, &Vec<HashSet<Vec<Elem>>>)>,
            head_idb: usize,
            pos: usize,
            binding: &mut Vec<Option<Elem>>,
            budget: &Budget,
            emit: &mut dyn FnMut(usize, Vec<Elem>),
        ) -> BudgetResult<()> {
            budget.tick(AT)?;
            if pos == order.len() {
                return emit_head_scan(s, rule, head_idb, binding, budget, emit);
            }
            let ai = order[pos];
            let atom = &rule.body[ai];
            if atom.negated {
                let t: Vec<Elem> = atom
                    .args
                    .iter()
                    .map(|&v| {
                        binding[v as usize].expect("negated atom variables are bound positively")
                    })
                    .collect();
                let present = match atom.pred {
                    Pred::Edb(r) => {
                        let rel = s.rel(r);
                        OBS_SCAN_TUPLES.add(rel.len() as u64);
                        rel.iter().any(|u| u == &t[..])
                    }
                    Pred::Idb(j) => {
                        OBS_SCAN_TUPLES.add(1);
                        idb[j].contains(&t)
                    }
                };
                if present {
                    return Ok(());
                }
                return match_body(
                    s,
                    rule,
                    order,
                    idb,
                    delta,
                    head_idb,
                    pos + 1,
                    binding,
                    budget,
                    emit,
                );
            }
            let try_tuple = |t: &[Elem],
                             binding: &mut Vec<Option<Elem>>,
                             emit: &mut dyn FnMut(usize, Vec<Elem>)|
             -> BudgetResult<()> {
                let mut touched: Vec<DlVar> = Vec::new();
                let mut ok = true;
                for (&v, &e) in atom.args.iter().zip(t.iter()) {
                    match binding[v as usize] {
                        Some(b) if b != e => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            binding[v as usize] = Some(e);
                            touched.push(v);
                        }
                    }
                }
                let result = if ok {
                    match_body(
                        s,
                        rule,
                        order,
                        idb,
                        delta,
                        head_idb,
                        pos + 1,
                        binding,
                        budget,
                        emit,
                    )
                } else {
                    Ok(())
                };
                for v in touched {
                    binding[v as usize] = None;
                }
                result
            };
            match atom.pred {
                Pred::Edb(r) => {
                    let rel = s.rel(r);
                    OBS_SCAN_TUPLES.add(rel.len() as u64);
                    for t in rel.iter() {
                        try_tuple(t, binding, emit)?;
                    }
                }
                Pred::Idb(j) => {
                    let source = match delta {
                        Some((dpos, d)) if dpos == ai => &d[j],
                        _ => &idb[j],
                    };
                    OBS_SCAN_TUPLES.add(source.len() as u64);
                    for t in source.iter() {
                        try_tuple(t, binding, emit)?;
                    }
                }
            }
            Ok(())
        }

        match_body(
            s,
            rule,
            &order,
            idb,
            delta,
            head,
            0,
            &mut binding,
            budget,
            emit,
        )
    }
}

// ---------------------------------------------------------------------
// Indexed join engine: IDB store, plans, and the execution kernel
// ---------------------------------------------------------------------

/// The mutable extent of one IDB predicate during a fixpoint run: a
/// columnar [`TupleStore`] (arenas + row-id dedup in one) plus
/// incrementally-maintained [`ColumnIndex`]es keyed by bound-position
/// subsets. The handful of indexes per predicate live in a `Vec` —
/// a linear key scan beats hashing a `Vec<usize>` per probe.
#[derive(Debug)]
pub(crate) struct IdbStore {
    pub(crate) store: TupleStore,
    pub(crate) indexes: Vec<(Vec<usize>, ColumnIndex)>,
}

impl IdbStore {
    pub(crate) fn new(arity: usize) -> IdbStore {
        IdbStore {
            store: TupleStore::new(arity),
            indexes: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.store.len()
    }

    pub(crate) fn ensure_index(&mut self, key: &[usize]) {
        if self.indexes.iter().any(|(k, _)| k == key) {
            return;
        }
        let mut idx = ColumnIndex::new(key);
        idx.extend(&self.store);
        self.indexes.push((key.to_vec(), idx));
    }

    pub(crate) fn index(&self, key: &[usize]) -> &ColumnIndex {
        &self
            .indexes
            .iter()
            .find(|(k, _)| k == key)
            .expect("index was built by ensure_plan_indexes")
            .1
    }

    /// Catches every index up to the rows appended since the last call
    /// (the semi-naive merge step).
    pub(crate) fn extend_indexes(&mut self) {
        for (_, idx) in &mut self.indexes {
            idx.extend(&self.store);
        }
    }
}

/// Lazily-built hash indexes over the (immutable) EDB relations,
/// cached for a whole evaluation. A `Vec` with linear lookup: the
/// cache holds a handful of entries and `get` sits on the probe hot
/// path, where a `HashMap` keyed by `(usize, Vec<usize>)` would
/// allocate a key per call.
#[derive(Debug, Default)]
struct EdbCache {
    cache: Vec<((usize, Vec<usize>), TupleIndex)>,
}

impl EdbCache {
    fn ensure(&mut self, s: &Structure, r: RelId, key: &[usize]) {
        if self.cache.iter().any(|((i, k), _)| *i == r.0 && k == key) {
            return;
        }
        let rel = s.rel(r);
        let idx = TupleIndex::build(rel.arity(), key, rel.iter());
        self.cache.push(((r.0, key.to_vec()), idx));
    }

    fn get(&self, r: RelId, key: &[usize]) -> &TupleIndex {
        &self
            .cache
            .iter()
            .find(|((i, k), _)| *i == r.0 && k == key)
            .expect("index was built by ensure_plan_indexes")
            .1
    }
}

/// How one body atom is accessed by the join kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Access {
    /// The delta-driver atom: iterate the (sharded) delta tuples.
    ScanDelta,
    /// No bound positions: iterate the full extent.
    Scan,
    /// EDB atom whose first `k` argument positions are bound: binary
    /// prefix probe on the relation's sorted rows.
    ProbePrefix(usize),
    /// Hash-index probe on the given bound argument positions.
    Probe(Vec<usize>),
    /// Anti-join check for a negated atom: every argument is bound, so
    /// the fully-instantiated tuple is tested for *absence* from the
    /// completed lower-stratum extent (sorted-prefix probe for EDB,
    /// `TupleStore::contains` for IDB — no index build needed).
    NegCheck,
}

/// One step of a rule plan: which body atom to join next, and how.
#[derive(Debug, Clone)]
struct Step {
    atom: usize,
    access: Access,
}

pub(crate) fn rule_num_vars(rule: &Rule) -> usize {
    rule.head
        .args
        .iter()
        .chain(rule.body.iter().flat_map(|a| a.args.iter()))
        .max()
        .map_or(0, |&m| m as usize + 1)
}

pub(crate) fn head_idb(rule: &Rule) -> usize {
    match rule.head.pred {
        Pred::Idb(i) => i,
        Pred::Edb(_) => unreachable!("heads are IDB by construction"),
    }
}

/// Greedy join order for one rule: the delta driver (if any) first,
/// then repeatedly the positive atom with the most bound argument
/// positions, breaking ties toward the smallest extent, then written
/// order. Each chosen atom records how it will be accessed given what
/// is bound. Negated atoms are placed as anti-join checks at the
/// earliest step where every one of their variables is bound — the
/// soonest the membership test is decidable is where it prunes most.
fn plan_rule(rule: &Rule, driver: Option<usize>, s: &Structure, store: &[IdbStore]) -> Vec<Step> {
    let num_vars = rule_num_vars(rule);
    let mut bound = vec![false; num_vars];
    let mut steps: Vec<Step> = Vec::with_capacity(rule.body.len());
    let mut remaining: Vec<usize> = (0..rule.body.len())
        .filter(|&i| !rule.body[i].negated)
        .collect();
    let mut neg_remaining: Vec<usize> = (0..rule.body.len())
        .filter(|&i| rule.body[i].negated)
        .collect();

    let take = |i: usize, steps: &mut Vec<Step>, bound: &mut Vec<bool>, access: Access| {
        steps.push(Step { atom: i, access });
        for &v in &rule.body[i].args {
            bound[v as usize] = true;
        }
    };
    let place_negs = |steps: &mut Vec<Step>, bound: &Vec<bool>, neg: &mut Vec<usize>| {
        neg.retain(|&i| {
            if rule.body[i].args.iter().all(|&v| bound[v as usize]) {
                steps.push(Step {
                    atom: i,
                    access: Access::NegCheck,
                });
                false
            } else {
                true
            }
        });
    };

    // Variable-free negated atoms (nullary, typically) gate the whole
    // rule — check them before touching any extent.
    place_negs(&mut steps, &bound, &mut neg_remaining);

    if let Some(d) = driver {
        take(d, &mut steps, &mut bound, Access::ScanDelta);
        remaining.retain(|&i| i != d);
        place_negs(&mut steps, &bound, &mut neg_remaining);
    }

    let extent_len = |atom: &Atom| -> usize {
        match atom.pred {
            Pred::Edb(r) => s.rel(r).len(),
            Pred::Idb(j) => store[j].len(),
        }
    };

    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .copied()
            .max_by_key(|&i| {
                let atom = &rule.body[i];
                let bound_positions = atom.args.iter().filter(|&&v| bound[v as usize]).count();
                (
                    bound_positions,
                    std::cmp::Reverse(extent_len(atom)),
                    std::cmp::Reverse(i),
                )
            })
            .expect("remaining is nonempty");
        let atom = &rule.body[best];
        let key: Vec<usize> = (0..atom.args.len())
            .filter(|&p| bound[atom.args[p] as usize])
            .collect();
        let access = if key.is_empty() {
            Access::Scan
        } else {
            match atom.pred {
                // A bound prefix of a sorted EDB relation needs no
                // index build at all.
                Pred::Edb(_) if key.iter().enumerate().all(|(i, &p)| i == p) => {
                    Access::ProbePrefix(key.len())
                }
                _ => Access::Probe(key),
            }
        };
        take(best, &mut steps, &mut bound, access);
        remaining.retain(|&i| i != best);
        place_negs(&mut steps, &bound, &mut neg_remaining);
    }
    // Anything left is unsafe negation; the engines reject it before
    // planning (`eval_strata`), but keep the plan total regardless.
    for i in neg_remaining {
        steps.push(Step {
            atom: i,
            access: Access::NegCheck,
        });
    }
    steps
}

/// Builds every index a plan will probe, so execution can share the
/// caches immutably (and across worker threads).
fn ensure_plan_indexes(
    plan: &[Step],
    rule: &Rule,
    s: &Structure,
    edb: &mut EdbCache,
    store: &mut [IdbStore],
) {
    for step in plan {
        if let Access::Probe(key) = &step.access {
            match rule.body[step.atom].pred {
                Pred::Edb(r) => edb.ensure(s, r, key),
                Pred::Idb(j) => store[j].ensure_index(key),
            }
        }
    }
}

/// Head emission for the scan oracle: emits every instantiation of the
/// head under the current binding, with unbound head variables ranging
/// over the whole domain. Materializes each head tuple as a `Vec` —
/// intentionally independent of the columnar kernel's buffered path.
fn emit_head_scan(
    s: &Structure,
    rule: &Rule,
    head_idb: usize,
    binding: &mut Vec<Option<Elem>>,
    budget: &Budget,
    emit: &mut dyn FnMut(usize, Vec<Elem>),
) -> BudgetResult<()> {
    #[allow(clippy::too_many_arguments)] // internal join kernel
    fn rec(
        s: &Structure,
        head: &Atom,
        head_idb: usize,
        binding: &mut Vec<Option<Elem>>,
        unbound: &[DlVar],
        i: usize,
        budget: &Budget,
        emit: &mut dyn FnMut(usize, Vec<Elem>),
    ) -> BudgetResult<()> {
        if i == unbound.len() {
            budget.tick(AT)?;
            let t: Vec<Elem> = head
                .args
                .iter()
                .map(|&v| binding[v as usize].expect("head var bound"))
                .collect();
            emit(head_idb, t);
            return Ok(());
        }
        let mut result = Ok(());
        for d in s.domain() {
            binding[unbound[i] as usize] = Some(d);
            result = rec(s, head, head_idb, binding, unbound, i + 1, budget, emit);
            if result.is_err() {
                break;
            }
        }
        binding[unbound[i] as usize] = None;
        result
    }

    let mut unbound: Vec<DlVar> = rule
        .head
        .args
        .iter()
        .copied()
        .filter(|&v| binding[v as usize].is_none())
        .collect();
    unbound.sort_unstable();
    unbound.dedup();
    rec(s, &rule.head, head_idb, binding, &unbound, 0, budget, emit)
}

/// Everything the join kernel needs for one rule application; shared
/// immutably across worker threads.
struct ExecCtx<'a> {
    s: &'a Structure,
    rule: &'a Rule,
    plan: &'a [Step],
    edb: &'a EdbCache,
    store: &'a [IdbStore],
    /// Delta row ids for the `ScanDelta` step (a shard, or everything),
    /// indexing into the driven IDB's store.
    driver: &'a [u32],
    head_idb: usize,
    /// Candidate tuples the kernel tried to bind during this rule
    /// application — the per-rule probe count reported on trace spans
    /// and by `fmtk datalog --explain`. A `Cell` because the kernel
    /// threads `&ExecCtx` immutably; each context lives on one thread.
    probes: Cell<u64>,
    /// Heap allocations the kernel's stack buffers spilled into (keys,
    /// prefixes, or head tuples wider than [`VAL_STACK`]); zero on the
    /// steady-state join loop, surfaced per rule for `--explain`.
    probe_allocs: Cell<u64>,
}

/// Bytes per stored element, for the arena-bytes trace fields.
const ELEM_BYTES: usize = std::mem::size_of::<Elem>();

/// Stack capacity for probe keys, prefixes, and head tuples — wide
/// enough for every realistic atom; wider tuples spill to the heap and
/// are counted in `queries.store.probe_allocs`.
const VAL_STACK: usize = 8;

/// Copies `n` values into `stack` (or `heap` when they don't fit) and
/// returns the filled slice — the zero-allocation buffer behind every
/// probe key and head emission in the kernel.
fn fill_slice<'b>(
    ctx: &ExecCtx<'_>,
    n: usize,
    vals: impl Iterator<Item = Elem>,
    stack: &'b mut [Elem; VAL_STACK],
    heap: &'b mut Vec<Elem>,
) -> &'b [Elem] {
    if n <= VAL_STACK {
        for (slot, v) in stack.iter_mut().zip(vals) {
            *slot = v;
        }
        &stack[..n]
    } else {
        ctx.probe_allocs.set(ctx.probe_allocs.get() + 1);
        store::note_probe_alloc();
        heap.extend(vals);
        heap
    }
}

/// Emits every instantiation of the head under the current binding;
/// unbound head variables range over the whole domain. The binding is
/// fully restored before a budget error propagates.
fn emit_head_unbound(
    ctx: &ExecCtx<'_>,
    binding: &mut Vec<Option<Elem>>,
    budget: &Budget,
    emit: &mut dyn FnMut(usize, &[Elem]),
) -> BudgetResult<()> {
    fn rec(
        ctx: &ExecCtx<'_>,
        binding: &mut Vec<Option<Elem>>,
        unbound: &[DlVar],
        i: usize,
        budget: &Budget,
        emit: &mut dyn FnMut(usize, &[Elem]),
    ) -> BudgetResult<()> {
        if i == unbound.len() {
            budget.tick(AT)?;
            let head = &ctx.rule.head;
            let mut stack = [0; VAL_STACK];
            let mut heap = Vec::new();
            let t = fill_slice(
                ctx,
                head.args.len(),
                head.args
                    .iter()
                    .map(|&v| binding[v as usize].expect("head var bound")),
                &mut stack,
                &mut heap,
            );
            emit(ctx.head_idb, t);
            return Ok(());
        }
        let mut result = Ok(());
        for d in ctx.s.domain() {
            binding[unbound[i] as usize] = Some(d);
            result = rec(ctx, binding, unbound, i + 1, budget, emit);
            if result.is_err() {
                break;
            }
        }
        binding[unbound[i] as usize] = None;
        result
    }

    // Empty for range-restricted rules, so the steady-state path never
    // allocates here (an empty `filter().collect()` does not allocate).
    let mut unbound: Vec<DlVar> = ctx
        .rule
        .head
        .args
        .iter()
        .copied()
        .filter(|&v| binding[v as usize].is_none())
        .collect();
    unbound.sort_unstable();
    unbound.dedup();
    rec(ctx, binding, &unbound, 0, budget, emit)
}

/// Binds a candidate tuple — addressed by a column accessor, so row-id
/// and slice candidates share one path — against the atom at plan step
/// `step_i`, recursing into the next step on success. Touched variables
/// are tracked in a bitmask (spilling past 128 into a lazily-allocated
/// `Vec`) and the binding is fully restored before a budget error
/// propagates.
fn try_candidate(
    ctx: &ExecCtx<'_>,
    step_i: usize,
    get: impl Fn(usize) -> Elem,
    binding: &mut Vec<Option<Elem>>,
    budget: &Budget,
    emit: &mut dyn FnMut(usize, &[Elem]),
) -> BudgetResult<()> {
    ctx.probes.set(ctx.probes.get() + 1);
    let atom = &ctx.rule.body[ctx.plan[step_i].atom];
    let mut touched: u128 = 0;
    let mut spill: Vec<DlVar> = Vec::new();
    let mut ok = true;
    for (i, &v) in atom.args.iter().enumerate() {
        let e = get(i);
        match binding[v as usize] {
            Some(b) if b != e => {
                ok = false;
                break;
            }
            Some(_) => {}
            None => {
                binding[v as usize] = Some(e);
                if (v as usize) < 128 {
                    touched |= 1u128 << v;
                } else {
                    spill.push(v);
                }
            }
        }
    }
    let result = if ok {
        exec(ctx, step_i + 1, binding, budget, emit)
    } else {
        Ok(())
    };
    while touched != 0 {
        binding[touched.trailing_zeros() as usize] = None;
        touched &= touched - 1;
    }
    for v in spill {
        binding[v as usize] = None;
    }
    result
}

/// The indexed join kernel: runs plan step `step_i` under the current
/// binding, emitting head instantiations once every step is satisfied.
/// Ticks the budget once per step entered. IDB candidates are walked as
/// row ids over the columnar stores; EDB candidates as row slices —
/// neither path materializes a tuple or a probe key on the heap.
fn exec(
    ctx: &ExecCtx<'_>,
    step_i: usize,
    binding: &mut Vec<Option<Elem>>,
    budget: &Budget,
    emit: &mut dyn FnMut(usize, &[Elem]),
) -> BudgetResult<()> {
    budget.tick(AT)?;
    if step_i == ctx.plan.len() {
        return emit_head_unbound(ctx, binding, budget, emit);
    }
    let step = &ctx.plan[step_i];
    let atom = &ctx.rule.body[step.atom];
    match (&step.access, atom.pred) {
        (Access::NegCheck, _) => {
            // Anti-join: the planner placed this step only once every
            // argument was bound, so the tuple is fully determined —
            // one membership probe decides the whole subtree.
            ctx.probes.set(ctx.probes.get() + 1);
            let mut stack = [0; VAL_STACK];
            let mut heap = Vec::new();
            let t = fill_slice(
                ctx,
                atom.args.len(),
                atom.args
                    .iter()
                    .map(|&v| binding[v as usize].expect("negated atom variables are bound")),
                &mut stack,
                &mut heap,
            );
            let present = match atom.pred {
                Pred::Edb(r) => index::probe_prefix(ctx.s.rel(r), t).next().is_some(),
                Pred::Idb(j) => ctx.store[j].store.contains(t),
            };
            if !present {
                exec(ctx, step_i + 1, binding, budget, emit)?;
            }
        }
        (Access::ScanDelta, Pred::Idb(j)) => {
            index::note_scan(ctx.driver.len() as u64);
            let st = &ctx.store[j].store;
            for &row in ctx.driver {
                try_candidate(ctx, step_i, |p| st.value(row, p), binding, budget, emit)?;
            }
        }
        (Access::ScanDelta, Pred::Edb(_)) => {
            unreachable!("delta drivers are IDB atoms")
        }
        (Access::Scan, Pred::Edb(r)) => {
            let rel = ctx.s.rel(r);
            index::note_scan(rel.len() as u64);
            for t in rel.iter() {
                try_candidate(ctx, step_i, |p| t[p], binding, budget, emit)?;
            }
        }
        (Access::Scan, Pred::Idb(j)) => {
            let st = &ctx.store[j].store;
            index::note_scan(st.len() as u64);
            for row in 0..st.len32() {
                try_candidate(ctx, step_i, |p| st.value(row, p), binding, budget, emit)?;
            }
        }
        (Access::ProbePrefix(k), Pred::Edb(r)) => {
            let mut stack = [0; VAL_STACK];
            let mut heap = Vec::new();
            let prefix = fill_slice(
                ctx,
                *k,
                (0..*k).map(|p| {
                    binding[atom.args[p] as usize].expect("planned key position is bound")
                }),
                &mut stack,
                &mut heap,
            );
            for t in index::probe_prefix(ctx.s.rel(r), prefix) {
                try_candidate(ctx, step_i, |p| t[p], binding, budget, emit)?;
            }
        }
        (Access::ProbePrefix(_), Pred::Idb(_)) => {
            unreachable!("prefix probes are planned for EDB atoms only")
        }
        (Access::Probe(key), Pred::Edb(r)) => {
            let mut stack = [0; VAL_STACK];
            let mut heap = Vec::new();
            let kv = fill_slice(
                ctx,
                key.len(),
                key.iter().map(|&p| {
                    binding[atom.args[p] as usize].expect("planned key position is bound")
                }),
                &mut stack,
                &mut heap,
            );
            for t in ctx.edb.get(r, key).probe(kv) {
                try_candidate(ctx, step_i, |p| t[p], binding, budget, emit)?;
            }
        }
        (Access::Probe(key), Pred::Idb(j)) => {
            let mut stack = [0; VAL_STACK];
            let mut heap = Vec::new();
            let kv = fill_slice(
                ctx,
                key.len(),
                key.iter().map(|&p| {
                    binding[atom.args[p] as usize].expect("planned key position is bound")
                }),
                &mut stack,
                &mut heap,
            );
            let st = &ctx.store[j].store;
            for row in ctx.store[j].index(key).probe(st, kv) {
                try_candidate(ctx, step_i, |p| st.value(row, p), binding, budget, emit)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn tc_program_matches_reference() {
        let prog = Program::transitive_closure();
        for s in [
            builders::directed_path(6),
            builders::directed_cycle(5),
            builders::full_binary_tree(3),
        ] {
            let out = prog.eval_naive(&s);
            let tc = prog.idb("tc").unwrap();
            let reference = crate::graph::transitive_closure(&s);
            let e = reference.signature().relation("E").unwrap();
            let expected: HashSet<Vec<Elem>> =
                reference.rel(e).iter().map(<[u32]>::to_vec).collect();
            assert_eq!(out.relation(tc), &expected);
        }
    }

    #[test]
    fn seminaive_agrees_with_naive() {
        let progs = [Program::transitive_closure(), Program::same_generation()];
        let structures = [
            builders::directed_path(7),
            builders::full_binary_tree(3),
            builders::directed_cycle(6),
            builders::empty_graph(4),
        ];
        for prog in &progs {
            for s in &structures {
                let a = prog.eval_naive(s);
                let b = prog.eval_seminaive(s);
                let c = prog.eval_seminaive_scan(s);
                for i in 0..prog.num_idbs() {
                    assert_eq!(a.relation(i), b.relation(i), "IDB {i}");
                    assert_eq!(a.relation(i), c.relation(i), "IDB {i} (scan)");
                }
                assert_eq!(a.iterations, b.iterations);
                assert_eq!(b.iterations, c.iterations);
                assert_eq!(
                    b.derivations, c.derivations,
                    "join order changes no emissions"
                );
                assert_eq!(b.delta_history, c.delta_history);
            }
        }
    }

    #[test]
    fn thread_counts_agree() {
        let prog = Program::same_generation();
        let s = builders::full_binary_tree(4);
        let reference = prog.eval_seminaive_with(&s, 1);
        for threads in [2, 3, 5] {
            let out = prog.eval_seminaive_with(&s, threads);
            for i in 0..prog.num_idbs() {
                assert_eq!(
                    reference.relation(i),
                    out.relation(i),
                    "threads = {threads}"
                );
            }
            assert_eq!(reference.iterations, out.iterations);
            assert_eq!(reference.derivations, out.derivations);
            assert_eq!(reference.delta_history, out.delta_history);
        }
    }

    #[test]
    fn seminaive_does_less_work() {
        let prog = Program::transitive_closure();
        let s = builders::directed_path(24);
        let a = prog.eval_naive(&s);
        let b = prog.eval_seminaive(&s);
        assert!(
            b.derivations < a.derivations,
            "semi-naive {} vs naive {}",
            b.derivations,
            a.derivations
        );
    }

    #[test]
    fn same_generation_on_binary_tree() {
        // Nodes are in the same generation iff at equal depth; on a full
        // binary tree of depth d, level i contributes 2^i × 2^i pairs.
        let d = 3u32;
        let s = builders::full_binary_tree(d);
        let prog = Program::same_generation();
        let out = prog.eval_seminaive(&s);
        let sg = prog.idb("sg").unwrap();
        let expected: u64 = (0..=d).map(|i| (1u64 << i) * (1u64 << i)).sum();
        assert_eq!(out.relation(sg).len() as u64, expected);
        // Spot checks: the two children of the root are same-generation.
        assert!(out.relation(sg).contains(&[1, 2]));
        assert!(!out.relation(sg).contains(&[0, 1]));
    }

    #[test]
    fn unbound_head_vars_range_over_domain() {
        let sig = Signature::graph();
        let prog = Program::parse(&sig, "all(x, y).").unwrap();
        let s = builders::empty_graph(3);
        let out = prog.eval_naive(&s);
        assert_eq!(out.relation(0).len(), 9);
    }

    #[test]
    fn parser_errors() {
        let sig = Signature::graph();
        assert!(Program::parse(&sig, "").is_err());
        assert!(Program::parse(&sig, "e(x, y) :- e(y, x).").is_err()); // EDB head
        assert!(Program::parse(&sig, "p(x) :- q(x).").is_err()); // unknown q
        assert!(Program::parse(&sig, "p(x). p(x, y).").is_err()); // arity clash
        assert!(Program::parse(&sig, "p(x) :- e(x).").is_err()); // EDB arity
        assert!(Program::parse(&sig, "p(x :- e(x, y).").is_err()); // syntax
        assert!(Program::parse(&sig, "p x :- e(x, y).").is_err()); // not an ident
    }

    #[test]
    fn parse_errors_carry_positions() {
        let sig = Signature::graph();
        let src = "p(x) :- e(x, y), q(x).";
        let err = Program::parse_spanned(&sig, src).unwrap_err();
        assert_eq!(err.span.slice(src), "q");
        assert_eq!(err.offset, 17);
        assert_eq!(err.to_string(), "at byte 17: unknown predicate q");

        let src = "p(x, y) :- e(x, y). p(x) :- e(x, x).";
        let err = Program::parse_spanned(&sig, src).unwrap_err();
        assert_eq!(err.span.slice(src), "p(x)");

        let src = "e(x, y) :- p(x).";
        let err = Program::parse_spanned(&sig, src).unwrap_err();
        assert_eq!(err.span.slice(src), "e");

        let src = "p(x) :- e(x).";
        let err = Program::parse_spanned(&sig, src).unwrap_err();
        assert_eq!(err.span.slice(src), "e(x)");
    }

    #[test]
    fn parse_spanned_spans_point_at_source() {
        let sig = Signature::graph();
        let src = " tc(x, y) :- e(x, y).\ntc(x, z) :- e(x, y), tc(y, z).";
        let p = Program::parse_spanned(&sig, src).unwrap();
        assert_eq!(p.spans.len(), 2);
        let r0 = &p.spans[0];
        assert_eq!(r0.span.slice(src), "tc(x, y) :- e(x, y)");
        assert_eq!(r0.head.span.slice(src), "tc(x, y)");
        assert_eq!(r0.head.pred.slice(src), "tc");
        assert_eq!(r0.head.args[1].slice(src), "y");
        assert_eq!(r0.body[0].span.slice(src), "e(x, y)");
        let r1 = &p.spans[1];
        assert_eq!(r1.body[1].span.slice(src), "tc(y, z)");
        assert_eq!(r1.body[1].args[0].slice(src), "y");
        // Per-rule variable names, in first-occurrence order.
        assert_eq!(p.var_names[1], vec!["x", "z", "y"]);
    }

    #[test]
    fn nullary_predicates() {
        let sig = Signature::graph();
        // `reach` is true iff some edge exists; `both()` uses the
        // explicit nullary form.
        let prog = Program::parse(&sig, "reach :- e(x, y). both() :- reach.").unwrap();
        let reach = prog.idb("reach").unwrap();
        let both = prog.idb("both").unwrap();
        assert_eq!(prog.idb_info(reach).1, 0);

        let s = builders::directed_path(3);
        for out in [
            prog.eval_naive(&s),
            prog.eval_seminaive(&s),
            prog.eval_seminaive_scan(&s),
        ] {
            assert_eq!(out.relation(reach).len(), 1);
            assert!(out.relation(both).contains(&Vec::new()));
        }
        let empty = builders::empty_graph(3);
        let out = prog.eval_seminaive(&empty);
        assert!(out.relation(reach).is_empty());
        assert!(out.relation(both).is_empty());

        // A nullary EDB reference still reports the arity clash, not a
        // cryptic parse failure.
        let err = Program::parse(&sig, "p(x) :- e.").unwrap_err();
        assert!(err.contains("arity"), "{err}");
    }

    #[test]
    fn repeated_variables_constrain() {
        let sig = Signature::graph();
        // Loops: p(x) :- e(x, x).
        let prog = Program::parse(&sig, "p(x) :- e(x, x).").unwrap();
        let s = builders::directed_cycle(1); // self-loop at 0
        let out = prog.eval_naive(&s);
        assert_eq!(out.relation(0).len(), 1);
        let t = builders::directed_path(4);
        assert!(prog.eval_naive(&t).relation(0).is_empty());
    }

    #[test]
    fn mutual_recursion() {
        let sig = Signature::graph();
        // Even/odd distance from a self-declared start set (all nodes).
        let prog = Program::parse(
            &sig,
            "ev(x, x). od(x, y) :- ev(x, z), e(z, y). ev(x, y) :- od(x, z), e(z, y).",
        )
        .unwrap();
        let s = builders::directed_path(5);
        let out = prog.eval_seminaive(&s);
        let ev = prog.idb("ev").unwrap();
        let od = prog.idb("od").unwrap();
        assert!(out.relation(ev).contains(&[0, 2]));
        assert!(out.relation(od).contains(&[0, 3]));
        assert!(!out.relation(ev).contains(&[0, 3]));
    }

    #[test]
    fn iterations_reported() {
        let prog = Program::transitive_closure();
        let s = builders::directed_path(10);
        let out = prog.eval_seminaive(&s);
        // Path of length 9: deltas shrink over ~9 iterations.
        assert!(out.iterations >= 8, "iterations = {}", out.iterations);
        assert!(out.derivations > 0);
        assert_eq!(out.delta_history.len(), out.iterations);
    }

    #[test]
    fn negation_parses_with_spans() {
        let sig = Signature::graph();
        let src = "p(x) :- e(x, y), !q(y). q(x) :- e(x, x).";
        let p = Program::parse_spanned(&sig, src).unwrap();
        assert!(!p.program.rules()[0].body[0].negated);
        assert!(p.program.rules()[0].body[1].negated);
        assert_eq!(p.spans[0].body[1].span.slice(src), "!q(y)");
        assert_eq!(p.spans[0].body[1].pred.slice(src), "q");
        assert_eq!(p.spans[0].body[1].args[0].slice(src), "y");
        assert!(p.program.has_negation());

        let src = "p(x) :- e(x, y), not q(y). q(x) :- e(x, x).";
        let p = Program::parse_spanned(&sig, src).unwrap();
        assert!(p.program.rules()[0].body[1].negated);
        assert_eq!(p.spans[0].body[1].span.slice(src), "not q(y)");
        assert_eq!(p.spans[0].body[1].pred.slice(src), "q");

        // Negated heads are rejected, with the span on the head atom.
        let src = "!p(x) :- e(x, y).";
        let err = Program::parse_spanned(&sig, src).unwrap_err();
        assert_eq!(err.span.slice(src), "!p(x)");
        assert!(err.message.contains("cannot be negated"), "{}", err.message);

        // A negated *unknown* predicate registers a rule-less IDB; a
        // positive one is still an error.
        let p = Program::parse(&sig, "q(x) :- e(x, x), !ghost(x).").unwrap();
        assert!(p.idb("ghost").is_some());
        assert!(Program::parse(&sig, "q(x) :- e(x, x), ghost(x).").is_err());
    }

    #[test]
    fn stratified_negation_agrees_across_engines() {
        let sig = Signature::graph();
        // Three flavors at once: a recursive positive stratum (t), a
        // negation stratum over it (sink = has an in-edge, no
        // out-edge), and a negated EDB atom (skip = two-step pairs
        // with no shortcut edge).
        let prog = Program::parse(
            &sig,
            "t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z). \
             src(x) :- e(x, y). sink(x) :- e(y, x), !src(x). \
             skip(x, z) :- e(x, y), e(y, z), !e(x, z).",
        )
        .unwrap();
        for s in [
            builders::directed_path(6),
            builders::directed_cycle(5),
            builders::full_binary_tree(3),
            builders::empty_graph(4),
        ] {
            let a = prog.eval_naive(&s);
            let b = prog.eval_seminaive(&s);
            let c = prog.eval_seminaive_scan(&s);
            for i in 0..prog.num_idbs() {
                assert_eq!(a.relation(i), b.relation(i), "IDB {i}");
                assert_eq!(a.relation(i), c.relation(i), "IDB {i} (scan)");
            }
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(b.iterations, c.iterations);
            assert_eq!(b.derivations, c.derivations);
            assert_eq!(b.delta_history, c.delta_history);
        }
        // Spot-check the semantics on the path 0→1→…→5.
        let s = builders::directed_path(6);
        let out = prog.eval_seminaive(&s);
        let sink = prog.idb("sink").unwrap();
        let skip = prog.idb("skip").unwrap();
        assert_eq!(out.relation(sink).len(), 1);
        assert!(out.relation(sink).contains(&[5]));
        assert_eq!(out.relation(skip).len(), 4);
        assert!(out.relation(skip).contains(&[0, 2]));
        // And thread counts still agree, counters included.
        let s = builders::full_binary_tree(4);
        let reference = prog.eval_seminaive_with(&s, 1);
        for threads in [2, 3] {
            let out = prog.eval_seminaive_with(&s, threads);
            for i in 0..prog.num_idbs() {
                assert_eq!(reference.relation(i), out.relation(i), "threads {threads}");
            }
            assert_eq!(reference.iterations, out.iterations);
            assert_eq!(reference.derivations, out.derivations);
            assert_eq!(reference.delta_history, out.delta_history);
        }
    }

    #[test]
    fn vacuous_negation_passes_everything_through() {
        let sig = Signature::graph();
        let prog = Program::parse(&sig, "q(x) :- e(x, x), !ghost(x).").unwrap();
        let s = builders::directed_cycle(1); // one self-loop at 0
        let out = prog.eval_seminaive(&s);
        assert!(out.relation(prog.idb("q").unwrap()).contains(&[0]));
        assert!(out.relation(prog.idb("ghost").unwrap()).is_empty());
    }

    #[test]
    fn unstratifiable_and_unsafe_programs_error_not_panic() {
        let sig = Signature::graph();
        let s = builders::directed_path(3);
        let b = Budget::unlimited();
        let prog = Program::parse(&sig, "p(x) :- e(x, y), !p(y).").unwrap();
        for err in [
            prog.try_eval_naive(&s, &b).unwrap_err(),
            prog.try_eval_seminaive_with(&s, 1, &b).unwrap_err(),
            prog.try_eval_seminaive_scan(&s, &b).unwrap_err(),
        ] {
            match err {
                EvalError::Unstratifiable {
                    rule,
                    atom,
                    ref pred,
                    ref cycle,
                } => {
                    assert_eq!((rule, atom), (0, 1));
                    assert_eq!(pred, "p");
                    assert_eq!(cycle, &["p".to_owned()]);
                }
                other => panic!("expected Unstratifiable, got {other:?}"),
            }
        }

        let prog = Program::parse(&sig, "q(x) :- e(x, x), !p(y, y). p(x, y) :- e(x, y).").unwrap();
        for err in [
            prog.try_eval_naive(&s, &b).unwrap_err(),
            prog.try_eval_seminaive_with(&s, 1, &b).unwrap_err(),
            prog.try_eval_seminaive_scan(&s, &b).unwrap_err(),
        ] {
            match err {
                EvalError::UnsafeNegation { rule, atom, var } => {
                    assert_eq!((rule, atom), (0, 1));
                    assert_eq!(var, 1); // `y`, second variable of rule 0
                }
                other => panic!("expected UnsafeNegation, got {other:?}"),
            }
        }
    }

    #[test]
    fn planner_places_neg_checks_at_earliest_bound_step() {
        let sig = Signature::graph();
        let prog = Program::parse(
            &sig,
            "q(x, z) :- e(x, y), !e(y, y), e(y, z). p(x) :- e(x, x).",
        )
        .unwrap();
        let s = builders::directed_path(4);
        let store = prog.new_store();
        let plan = plan_rule(&prog.rules()[0], None, &s, &store);
        // The NegCheck on `!e(y, y)` lands right after the first step
        // binds y — before the second positive edge atom is joined.
        let neg_step = plan
            .iter()
            .position(|st| st.access == Access::NegCheck)
            .unwrap();
        assert_eq!(neg_step, 1, "plan: {plan:?}");
    }

    #[test]
    fn planner_orders_most_bound_first() {
        // sg rule with the delta at position 2: the driver binds xp and
        // yp, so both edge atoms become indexable probes.
        let prog = Program::same_generation();
        let s = builders::full_binary_tree(3);
        let store = prog.new_store();
        let rule = &prog.rules()[1];
        let plan = plan_rule(rule, Some(2), &s, &store);
        assert_eq!(plan[0].atom, 2);
        assert_eq!(plan[0].access, Access::ScanDelta);
        for step in &plan[1..] {
            assert_eq!(
                step.access,
                Access::ProbePrefix(1),
                "edge atoms probe on their bound parent"
            );
        }
        // Without a driver nothing is bound at first: the smallest
        // extent leads (the empty IDB extent beats the edge relation).
        let plan = plan_rule(rule, None, &s, &store);
        assert_eq!(plan[0].atom, 2);
        assert_eq!(plan[0].access, Access::Scan);
    }
}
