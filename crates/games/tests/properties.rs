//! Property tests for the game solvers: the structural laws every EF
//! variant must satisfy, attacked with random structures.

use fmt_games::bijection::bijection_duplicator_wins;
use fmt_games::pebble::pebble_duplicator_wins;
use fmt_games::solver::EfSolver;
use fmt_structures::{Signature, Structure, StructureBuilder};
use proptest::prelude::*;

fn arb_graph(max_n: u32) -> impl Strategy<Value = Structure> {
    (1u32..=max_n, proptest::collection::vec(any::<bool>(), 36)).prop_map(|(n, bits)| {
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig, n);
        let mut k = 0usize;
        for u in 0..n {
            for v in 0..n {
                if bits[k % bits.len()] {
                    b.add(e, &[u, v]).unwrap();
                }
                k += 1;
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Winning is antitone in the round count: surviving n rounds
    /// implies surviving any m ≤ n.
    #[test]
    fn win_is_antitone_in_rounds(a in arb_graph(5), b in arb_graph(5)) {
        let mut wins = Vec::new();
        let mut solver = EfSolver::new(&a, &b);
        for n in 1..=3u32 {
            wins.push(solver.duplicator_wins(n));
        }
        for w in wins.windows(2) {
            // wins[n] true ⇒ wins[n-1] true, i.e. no false-then-true.
            prop_assert!(!w[1] || w[0], "win sequence must be antitone: {wins:?}");
        }
    }

    /// The game is symmetric in its two structures.
    #[test]
    fn game_is_symmetric(a in arb_graph(5), b in arb_graph(5), n in 1u32..=3) {
        prop_assert_eq!(
            EfSolver::new(&a, &b).duplicator_wins(n),
            EfSolver::new(&b, &a).duplicator_wins(n)
        );
    }

    /// Every structure is n-equivalent to itself.
    #[test]
    fn game_is_reflexive(a in arb_graph(5), n in 1u32..=3) {
        prop_assert!(EfSolver::new(&a, &a).duplicator_wins(n));
    }

    /// ≡ₙ is transitive (on a sampled triple).
    #[test]
    fn game_equivalence_is_transitive(
        a in arb_graph(4),
        b in arb_graph(4),
        c in arb_graph(4),
        n in 1u32..=2,
    ) {
        let ab = EfSolver::new(&a, &b).duplicator_wins(n);
        let bc = EfSolver::new(&b, &c).duplicator_wins(n);
        let ac = EfSolver::new(&a, &c).duplicator_wins(n);
        if ab && bc {
            prop_assert!(ac, "≡_{} must be transitive", n);
        }
    }

    /// The pebble game is easier for the duplicator than the EF game
    /// with the same number of rounds (fewer spoiler resources).
    #[test]
    fn pebble_no_harder_than_ef(a in arb_graph(4), b in arb_graph(4), n in 1u32..=2) {
        if EfSolver::new(&a, &b).duplicator_wins(n) {
            for k in 1..=n as usize {
                prop_assert!(pebble_duplicator_wins(&a, &b, k, n));
            }
        }
    }

    /// The bijective game is harder for the duplicator than the EF
    /// game.
    #[test]
    fn bijective_no_easier_than_ef(a in arb_graph(4), b in arb_graph(4), n in 1u32..=2) {
        if bijection_duplicator_wins(&a, &b, n) {
            prop_assert!(EfSolver::new(&a, &b).duplicator_wins(n));
        }
    }

    /// Parallel and serial solvers are extensionally equal.
    #[test]
    fn parallel_equals_serial(a in arb_graph(5), b in arb_graph(5), n in 1u32..=3) {
        prop_assert_eq!(
            fmt_games::parallel::duplicator_wins_parallel(&a, &b, n, 3),
            EfSolver::new(&a, &b).duplicator_wins(n)
        );
    }

    /// Adding the same disjoint component to both sides preserves
    /// duplicator wins (the composition property game arguments rely
    /// on, in its easy direction).
    #[test]
    fn disjoint_union_preserves_equivalence(
        a in arb_graph(4),
        b in arb_graph(4),
        extra in arb_graph(3),
        n in 1u32..=2,
    ) {
        if EfSolver::new(&a, &b).duplicator_wins(n) {
            let a2 = a.disjoint_union(&extra).unwrap();
            let b2 = b.disjoint_union(&extra).unwrap();
            prop_assert!(
                EfSolver::new(&a2, &b2).duplicator_wins(n),
                "A ≡ₙ B must imply A ⊎ C ≡ₙ B ⊎ C"
            );
        }
    }
}
