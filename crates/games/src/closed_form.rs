//! The survey's "library of winning strategies": closed-form duplicator
//! strategies for pure sets and linear orders.
//!
//! Game arguments need families `(Aₙ, Bₙ)` with `Aₙ ≡ₙ Bₙ` *for all n*
//! — a finite solver cannot check infinitely many cases, but a
//! closed-form strategy **is** the inductive argument, executed. This
//! module provides:
//!
//! * the pure-set strategy ("mirror replays, answer fresh with fresh")
//!   and the exact win predicate [`sets_duplicator_wins`];
//! * the linear-order strategy behind **Theorem 3.1**
//!   (`L_m ≡ₙ L_k` for `m, k ≥ 2ⁿ`): the classical interval-halving
//!   argument, with the exact characterization
//!   [`orders_equivalent`] (`m = k` or `m, k ≥ 2ⁿ − 1`) and a reply
//!   function [`order_reply`] implementing the invariant "corresponding
//!   gaps are equal or both ≥ 2ʲ − 1 with j rounds to go";
//! * both are cross-validated against the exact solver in the tests and
//!   attacked by random spoilers in `play`.

use fmt_structures::Elem;

/// Exact win predicate for the `n`-round game on pure sets of sizes
/// `na`, `nb`: the duplicator wins iff the sets have equal size or both
/// have at least `n` elements.
pub fn sets_duplicator_wins(na: u32, nb: u32, n: u32) -> bool {
    na == nb || (na >= n && nb >= n)
}

/// The pure-set duplicator reply: mirror replayed elements, otherwise
/// answer with any unplayed element of the other set.
///
/// `pairs` is the play so far; `x` the spoiler's pick in the set of size
/// `n_other`'s *opposite* side. Returns `None` when the strategy is
/// cornered (no fresh element remains), which by
/// [`sets_duplicator_wins`] only happens when the spoiler had a winning
/// attack.
pub fn set_reply(
    pairs: &[(Elem, Elem)],
    spoiler_in_first: bool,
    x: Elem,
    n_other: u32,
) -> Option<Elem> {
    for &(a, b) in pairs {
        if spoiler_in_first && a == x {
            return Some(b);
        }
        if !spoiler_in_first && b == x {
            return Some(a);
        }
    }
    // Fresh: answer with the smallest unplayed element on the other side.
    (0..n_other).find(|y| {
        !pairs
            .iter()
            .any(|&(a, b)| if spoiler_in_first { b == *y } else { a == *y })
    })
}

/// Exact characterization behind Theorem 3.1:
/// `L_m ≡ₙ L_k` iff `m = k` or both `m, k ≥ 2ⁿ − 1`.
///
/// (The paper states the sufficient condition `m, k ≥ 2ⁿ`; the bound
/// `2ⁿ − 1` is tight, as the solver cross-validation test shows.)
pub fn orders_equivalent(m: u64, k: u64, n: u32) -> bool {
    let threshold = (1u64 << n) - 1;
    m == k || (m >= threshold && k >= threshold)
}

/// Gap equivalence with `j` rounds to go: equal, or both at least
/// `2ʲ − 1`.
fn gap_equiv(a: u64, b: u64, j: u32) -> bool {
    let t = (1u64 << j) - 1;
    a == b || (a >= t && b >= t)
}

/// The interval-halving duplicator reply for linear orders `L_m`
/// vs `L_k` (elements are `0..m` / `0..k` in their natural order).
///
/// Given the played pairs, a spoiler move `x` (in `L_m` if
/// `spoiler_in_first`, else in `L_k`) and `j` = rounds remaining *after*
/// this move, returns a reply `y` maintaining the invariant that all
/// corresponding gaps (between consecutive played elements, including
/// the virtual endpoints) are gap-equivalent at level `j` (equal, or
/// both at least `2ʲ − 1`).
///
/// Returns `None` if no reply maintains the invariant — which, if the
/// invariant held before, only happens when the game was already lost.
pub fn order_reply(
    pairs: &[(Elem, Elem)],
    spoiler_in_first: bool,
    x: Elem,
    m: u64,
    k: u64,
    j: u32,
) -> Option<Elem> {
    // Normalize to "spoiler plays in the first coordinate".
    let (mut play, sm, sk): (Vec<(u64, u64)>, u64, u64) = if spoiler_in_first {
        (
            pairs.iter().map(|&(a, b)| (a as u64, b as u64)).collect(),
            m,
            k,
        )
    } else {
        (
            pairs.iter().map(|&(a, b)| (b as u64, a as u64)).collect(),
            k,
            m,
        )
    };
    let x = x as u64;
    // Replay?
    if let Some(&(_, q)) = play.iter().find(|&&(p, _)| p == x) {
        return Some(q as Elem);
    }
    play.sort_unstable();
    // Find the neighbors of x among played elements (with virtual
    // endpoints −1 and sm on the spoiler side, −1 and sk on the reply
    // side). We work with +1 shifted coordinates to stay unsigned:
    // virtual left endpoint at position 0 means value −1.
    let mut left: Option<(u64, u64)> = None; // (spoiler-side value, reply-side value)
    let mut right: Option<(u64, u64)> = None;
    for &(p, q) in &play {
        if p < x {
            left = Some((p, q));
        } else if p > x && right.is_none() {
            right = Some((p, q));
        }
    }
    // Gap sizes to the left/right of x on the spoiler side (virtual
    // endpoints at −1 and sm).
    let la = match left {
        Some((p, _)) => x - p - 1,
        None => x,
    };
    let ra = match right {
        Some((p, _)) => p - x - 1,
        None => sm - x - 1,
    };
    let left_anchor: i64 = match left {
        Some((_, q)) => q as i64,
        None => -1,
    };
    let right_anchor: i64 = match right {
        Some((_, q)) => q as i64,
        None => sk as i64,
    };
    // Interval available on the reply side (exclusive anchors).
    let avail = (right_anchor - left_anchor - 1) as u64;
    if avail == 0 {
        return None;
    }
    let t = (1u64 << j) - 1;
    // Choose the reply's left gap.
    let left_gap = if la < t {
        la // must match exactly
    } else {
        // Need ≥ t on both sides where the spoiler side is big.
        t.max(if ra < t {
            // Right gap must match exactly: left gap = avail - 1 - ra.
            (avail - 1).checked_sub(ra)?
        } else {
            t
        })
    };
    if left_gap >= avail {
        return None;
    }
    let right_gap = avail - 1 - left_gap;
    if !gap_equiv(la, left_gap, j) || !gap_equiv(ra, right_gap, j) {
        return None;
    }
    let y = (left_anchor + 1 + left_gap as i64) as u64;
    debug_assert!(y < sk);
    Some(y as Elem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::EfSolver;
    use fmt_structures::builders;

    #[test]
    fn sets_predicate_matches_solver() {
        for na in 0..6u32 {
            for nb in 0..6u32 {
                for n in 1..5u32 {
                    let a = builders::set(na);
                    let b = builders::set(nb);
                    let mut s = EfSolver::new(&a, &b);
                    assert_eq!(
                        s.duplicator_wins(n),
                        sets_duplicator_wins(na, nb, n),
                        "sets {na}/{nb} at n = {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn orders_predicate_matches_solver() {
        // Exhaustive cross-validation of the exact Theorem 3.1
        // characterization against the game solver.
        for m in 1..=9u64 {
            for k in 1..=9u64 {
                for n in 1..=3u32 {
                    let a = builders::linear_order(m as u32);
                    let b = builders::linear_order(k as u32);
                    let mut s = EfSolver::new(&a, &b);
                    assert_eq!(
                        s.duplicator_wins(n),
                        orders_equivalent(m, k, n),
                        "L_{m} vs L_{k} at n = {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_statement_follows() {
        // The paper's form: m, k ≥ 2^n ⇒ L_m ≡_n L_k.
        for n in 1..=5u32 {
            let bound = 1u64 << n;
            assert!(orders_equivalent(bound, bound + 17, n));
            assert!(orders_equivalent(bound + 3, bound, n));
        }
        // And the canonical EVEN instance: L_{2^n} vs L_{2^n + 1}.
        for n in 1..=5u32 {
            assert!(orders_equivalent(1 << n, (1 << n) + 1, n));
        }
    }

    #[test]
    fn sharpness() {
        // L_{2^n − 2} vs L_{2^n − 1} are distinguishable at rank n.
        for n in 2..=4u32 {
            let t = (1u64 << n) - 1;
            assert!(!orders_equivalent(t - 1, t, n));
            assert!(orders_equivalent(t, t + 1, n));
        }
    }

    /// Play the closed-form order strategy against *every* spoiler line
    /// of play (exhaustive game tree walk) and check the duplicator
    /// never loses when the predicate says she wins.
    #[test]
    fn order_strategy_survives_exhaustive_spoiler() {
        fn attack(
            a: &fmt_structures::Structure,
            b: &fmt_structures::Structure,
            m: u64,
            k: u64,
            pairs: &mut Vec<(Elem, Elem)>,
            rounds_left: u32,
        ) -> bool {
            if rounds_left == 0 {
                return true;
            }
            // Spoiler tries every element of both sides.
            for side_first in [true, false] {
                let size = if side_first { m } else { k };
                for x in 0..size as u32 {
                    let Some(y) = order_reply(pairs, side_first, x, m, k, rounds_left - 1) else {
                        return false;
                    };
                    let (pa, pb) = if side_first { (x, y) } else { (y, x) };
                    if !fmt_structures::partial::extension_ok(a, b, pairs, pa, pb) {
                        return false;
                    }
                    pairs.push((pa, pb));
                    let ok = attack(a, b, m, k, pairs, rounds_left - 1);
                    pairs.pop();
                    if !ok {
                        return false;
                    }
                }
            }
            true
        }
        // All winning cases with small parameters.
        for (m, k, n) in [
            (3u64, 4u64, 2u32),
            (3, 7, 2),
            (7, 8, 3),
            (7, 12, 3),
            (4, 4, 2),
        ] {
            assert!(orders_equivalent(m, k, n), "precondition");
            let a = builders::linear_order(m as u32);
            let b = builders::linear_order(k as u32);
            let mut pairs = Vec::new();
            assert!(
                attack(&a, &b, m, k, &mut pairs, n),
                "strategy lost on L_{m} vs L_{k}, n = {n}"
            );
        }
    }

    #[test]
    fn set_reply_mirrors() {
        let pairs = vec![(0, 3), (2, 1)];
        assert_eq!(set_reply(&pairs, true, 0, 5), Some(3));
        assert_eq!(set_reply(&pairs, false, 1, 5), Some(2));
        // Fresh element: smallest unused on the other side.
        assert_eq!(set_reply(&pairs, true, 4, 5), Some(0));
        // Cornered: all of the other side used.
        let full = vec![(0, 0), (1, 1)];
        assert_eq!(set_reply(&full, true, 2, 2), None);
    }
}
