//! k-pebble games — the games of the finite-variable fragments `FOᵏ`.
//!
//! The survey lists "number of variables" among the parameters along
//! which FO is restricted to more feasible fragments; the matching game
//! gives each player `k` pebbles that can be **re-used**: the spoiler
//! moves (or places) pebble `i` on an element, the duplicator moves its
//! twin, and the currently pebbled pairs must always form a partial
//! isomorphism. Duplicator winning the `n`-round `k`-pebble game on
//! `(A, B)` iff `A` and `B` agree on all `FOᵏ` sentences of quantifier
//! rank ≤ n.
//!
//! Because pebbles can be lifted, a position is just the *set* of
//! pebbled pairs (at most `k` of them) — pebble identities are
//! interchangeable — which keeps the memoized search small.

use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::partial::extension_ok;
use fmt_structures::{Elem, Structure};
use std::collections::HashMap;

/// Budget tick site label for this engine.
const AT: &str = "games.pebble";

/// An exact solver for `n`-round `k`-pebble games.
#[derive(Debug)]
pub struct PebbleSolver<'a> {
    a: &'a Structure,
    b: &'a Structure,
    k: usize,
    budget: Budget,
    memo: HashMap<(Vec<(Elem, Elem)>, u32), bool>,
}

impl<'a> PebbleSolver<'a> {
    /// Creates a solver for the `k`-pebble games on `(a, b)`.
    ///
    /// # Panics
    /// Panics if `k == 0` or the signatures differ.
    pub fn new(a: &'a Structure, b: &'a Structure, k: usize) -> PebbleSolver<'a> {
        assert!(k >= 1, "at least one pebble");
        assert_eq!(
            a.signature(),
            b.signature(),
            "games need a common signature"
        );
        PebbleSolver {
            a,
            b,
            k,
            budget: Budget::unlimited(),
            memo: HashMap::new(),
        }
    }

    /// Creates a solver that consults `budget` on every visited
    /// position; use [`PebbleSolver::try_duplicator_wins`] to observe
    /// exhaustion.
    ///
    /// # Panics
    /// Panics if `k == 0` or the signatures differ.
    pub fn with_budget(
        a: &'a Structure,
        b: &'a Structure,
        k: usize,
        budget: Budget,
    ) -> PebbleSolver<'a> {
        let mut s = PebbleSolver::new(a, b, k);
        s.budget = budget;
        s
    }

    /// Decides whether the duplicator wins the `rounds`-round `k`-pebble
    /// game (starting with no pebbles placed; constants, if any, are
    /// permanently in play through the partial-isomorphism checks and
    /// are never occupied by pebbles).
    /// # Panics
    /// Panics if the solver's budget exhausts; use
    /// [`PebbleSolver::try_duplicator_wins`] with a budgeted solver.
    pub fn duplicator_wins(&mut self, rounds: u32) -> bool {
        self.try_duplicator_wins(rounds)
            .expect("budget exhausted in PebbleSolver::duplicator_wins; use try_duplicator_wins")
    }

    /// Budgeted [`PebbleSolver::duplicator_wins`]: stops cleanly when
    /// the budget runs out; only fully decided positions are memoized.
    pub fn try_duplicator_wins(&mut self, rounds: u32) -> BudgetResult<bool> {
        let mut span =
            fmt_obs::trace_span!("games.pebble.depth", rounds = rounds, pebbles = self.k);
        if !fmt_structures::partial::is_partial_isomorphism(self.a, self.b, &[]) {
            span.record_field("win", false);
            return Ok(false);
        }
        let result = self.wins(&[], rounds);
        if let Ok(win) = &result {
            span.record_field("win", *win);
        }
        result
    }

    fn wins(&mut self, pairs: &[(Elem, Elem)], n: u32) -> BudgetResult<bool> {
        self.budget.tick(AT)?;
        if n == 0 {
            return Ok(true);
        }
        let key = (pairs.to_vec(), n);
        if let Some(&v) = self.memo.get(&key) {
            return Ok(v);
        }
        // Spoiler options: place a new pebble (if a pebble is free) or
        // lift one pebbled pair and re-place it.
        let mut bases: Vec<Vec<(Elem, Elem)>> = Vec::new();
        if pairs.len() < self.k {
            bases.push(pairs.to_vec());
        }
        for i in 0..pairs.len() {
            let mut base = pairs.to_vec();
            base.remove(i);
            if !bases.contains(&base) {
                bases.push(base);
            }
        }
        let mut result = true;
        for base in &bases {
            if !self.survives_all_moves(base, n)? {
                result = false;
                break;
            }
        }
        self.memo.insert(key, result);
        Ok(result)
    }

    fn survives_all_moves(&mut self, base: &[(Elem, Elem)], n: u32) -> BudgetResult<bool> {
        // Spoiler plays any element of A; duplicator answers in B.
        for x in self.a.domain() {
            let mut ok = false;
            for y in self.b.domain() {
                if extension_ok(self.a, self.b, base, x, y) {
                    let mut next = base.to_vec();
                    next.push((x, y));
                    next.sort_unstable();
                    next.dedup();
                    if self.wins(&next, n - 1)? {
                        ok = true;
                        break;
                    }
                }
            }
            if !ok {
                return Ok(false);
            }
        }
        // Spoiler plays any element of B.
        for y in self.b.domain() {
            let mut ok = false;
            for x in self.a.domain() {
                if extension_ok(self.a, self.b, base, x, y) {
                    let mut next = base.to_vec();
                    next.push((x, y));
                    next.sort_unstable();
                    next.dedup();
                    if self.wins(&next, n - 1)? {
                        ok = true;
                        break;
                    }
                }
            }
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Convenience wrapper: duplicator win in the `rounds`-round `k`-pebble
/// game.
pub fn pebble_duplicator_wins(a: &Structure, b: &Structure, k: usize, rounds: u32) -> bool {
    try_pebble_duplicator_wins(a, b, k, rounds, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budgeted [`pebble_duplicator_wins`].
pub fn try_pebble_duplicator_wins(
    a: &Structure,
    b: &Structure,
    k: usize,
    rounds: u32,
    budget: &Budget,
) -> BudgetResult<bool> {
    PebbleSolver::with_budget(a, b, k, budget.clone()).try_duplicator_wins(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn one_pebble_cannot_compare_order_elements() {
        // With a single pebble no two elements are ever pebbled at
        // once, and a single order element satisfies no atom (x < x is
        // false), so the duplicator survives indefinitely on any two
        // nonempty orders.
        let a = builders::linear_order(2);
        let b = builders::linear_order(5);
        assert!(pebble_duplicator_wins(&a, &b, 1, 6));
    }

    #[test]
    fn two_pebbles_count_along_orders() {
        // FO² over orders can say "there are ≥ m elements" by walking
        // right reusing two variables, so L_2 and L_3 are separated by a
        // 2-pebble game with enough rounds.
        let a = builders::linear_order(2);
        let b = builders::linear_order(3);
        assert!(!pebble_duplicator_wins(&a, &b, 2, 4));
        // ... but not in a single round.
        assert!(pebble_duplicator_wins(&a, &b, 2, 1));
    }

    #[test]
    fn pebble_games_are_weaker_than_ef_at_same_rounds() {
        // The k-pebble game restricts the spoiler (pebbles run out), so
        // a duplicator EF win implies a duplicator pebble win.
        let pairs = [
            (builders::linear_order(3), builders::linear_order(4)),
            (builders::set(3), builders::set(5)),
            (builders::undirected_cycle(4), builders::undirected_cycle(5)),
        ];
        for (a, b) in &pairs {
            for n in 1..=3u32 {
                let ef = crate::solver::EfSolver::new(a, b).duplicator_wins(n);
                if ef {
                    for k in 1..=n as usize {
                        assert!(
                            pebble_duplicator_wins(a, b, k, n),
                            "EF win must imply {k}-pebble win at n = {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn k_equal_rounds_matches_ef() {
        // With k ≥ n rounds the pebble game coincides with the EF game
        // (no pebble ever needs reuse).
        for (m, kk) in [(2u32, 3u32), (3, 3), (3, 7), (4, 6)] {
            let a = builders::linear_order(m);
            let b = builders::linear_order(kk);
            for n in 1..=3u32 {
                let ef = crate::solver::EfSolver::new(&a, &b).duplicator_wins(n);
                let pb = pebble_duplicator_wins(&a, &b, n as usize, n);
                assert_eq!(ef, pb, "L_{m} vs L_{kk} at n = {n}");
            }
        }
    }

    #[test]
    fn isomorphic_structures_always_win() {
        let a = builders::undirected_cycle(5);
        let b = a.relabel(&[3, 4, 0, 1, 2]);
        assert!(pebble_duplicator_wins(&a, &b, 2, 6));
        assert!(pebble_duplicator_wins(&a, &b, 3, 5));
    }

    #[test]
    fn empty_vs_nonempty() {
        let e = builders::set(0);
        let s = builders::set(2);
        assert!(!pebble_duplicator_wins(&e, &s, 1, 1));
        assert!(pebble_duplicator_wins(&e, &e, 2, 4));
    }
}
