//! The exact Ehrenfeucht–Fraïssé game solver.
//!
//! Positions are sets of played pairs plus a round budget; the solver
//! decides duplicator wins by AND/OR search over spoiler moves and
//! duplicator replies, with three optimizations (each individually
//! switchable for the ablation benchmark):
//!
//! * **Memoization** on canonical position keys (sorted, deduplicated
//!   pair sets — play order is irrelevant to the future of the game);
//! * **Fresh-move pruning**: a spoiler replay of an already-played
//!   element forces the duplicator's reply (the recorded partner) and
//!   only burns a round, so by monotonicity it never helps the spoiler
//!   and both players can be restricted to fresh elements;
//! * **Profile-guided reply ordering**: duplicator replies are tried in
//!   order of matching degree profiles, finding witnesses early.
//!
//! The search is exponential in the worst case — unavoidable, but game
//! arguments live at small `n` (the paper's examples all have `n ≤ 4`),
//! where the solver is exact and fast.

use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::partial::extension_ok;
use fmt_structures::{Elem, Structure};
use std::collections::HashMap;

/// Budget tick site label for this engine.
const AT: &str = "games.solver";

/// Positions expanded across all solver instances (process-wide; see
/// [`fmt_obs`]).
static OBS_POSITIONS: fmt_obs::Counter = fmt_obs::Counter::new("games.solver.positions_expanded");
static OBS_MEMO_HITS: fmt_obs::Counter = fmt_obs::Counter::new("games.solver.memo_hits");
static OBS_MEMO_MISSES: fmt_obs::Counter = fmt_obs::Counter::new("games.solver.memo_misses");
static OBS_PRUNED: fmt_obs::Counter = fmt_obs::Counter::new("games.solver.pruned_replays");

/// Which structure the spoiler picked in a move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first structure (`A`).
    Left,
    /// The second structure (`B`).
    Right,
}

/// Optimization switches (for the ablation experiments; leave at
/// [`SolverConfig::default`] for normal use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Memoize positions.
    pub memoization: bool,
    /// Restrict both players to fresh elements.
    pub fresh_move_pruning: bool,
    /// Order duplicator replies by degree-profile match.
    pub profile_ordering: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            memoization: true,
            fresh_move_pruning: true,
            profile_ordering: true,
        }
    }
}

/// Statistics of a solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Positions expanded (recursive calls that did real work).
    pub expanded: u64,
    /// Memo hits.
    pub memo_hits: u64,
}

/// An exact solver for the games `Gₙ(A, B)`, reusable across round
/// counts and positions (the memo table is shared).
#[derive(Debug)]
pub struct EfSolver<'a> {
    a: &'a Structure,
    b: &'a Structure,
    config: SolverConfig,
    budget: Budget,
    memo: HashMap<(Vec<(Elem, Elem)>, u32), bool>,
    profile_a: Vec<u64>,
    profile_b: Vec<u64>,
    /// Search statistics.
    pub stats: SolverStats,
}

/// An isomorphism-invariant per-element fingerprint used to order
/// duplicator replies: occurrences per (relation, position), plus
/// constant incidences.
fn profiles(s: &Structure) -> Vec<u64> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let n = s.size() as usize;
    let mut acc: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, _, arity) in s.signature().relations() {
        let mut per_pos: Vec<Vec<u32>> = vec![vec![0; arity]; n];
        for t in s.rel(r).iter() {
            for (i, &e) in t.iter().enumerate() {
                per_pos[e as usize][i] += 1;
            }
        }
        for (v, counts) in per_pos.into_iter().enumerate() {
            acc[v].extend(counts);
        }
    }
    for (i, &c) in s.constants().iter().enumerate() {
        acc[c as usize].push(1_000_000 + i as u32);
    }
    acc.into_iter()
        .map(|v| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        })
        .collect()
}

impl<'a> EfSolver<'a> {
    /// Creates a solver for the pair `(a, b)`.
    ///
    /// # Panics
    /// Panics if the structures have different signatures.
    pub fn new(a: &'a Structure, b: &'a Structure) -> EfSolver<'a> {
        EfSolver::with_config(a, b, SolverConfig::default())
    }

    /// Creates a solver that consults `budget` on every visited game
    /// position; use the `try_*` methods to observe exhaustion. The memo
    /// table only ever holds fully decided positions, so a solver that
    /// exhausted mid-search can be reused after the budget is replaced
    /// by continuing through `try_*` calls on a fresh handle.
    pub fn with_budget(a: &'a Structure, b: &'a Structure, budget: Budget) -> EfSolver<'a> {
        let mut s = EfSolver::with_config(a, b, SolverConfig::default());
        s.budget = budget;
        s
    }

    /// Creates a solver with explicit optimization switches.
    pub fn with_config(a: &'a Structure, b: &'a Structure, config: SolverConfig) -> EfSolver<'a> {
        assert_eq!(
            a.signature(),
            b.signature(),
            "games need a common signature"
        );
        let profile_a = profiles(a);
        let profile_b = profiles(b);
        EfSolver {
            a,
            b,
            config,
            budget: Budget::unlimited(),
            memo: HashMap::new(),
            profile_a,
            profile_b,
            stats: SolverStats::default(),
        }
    }

    /// The initial position: the constant pairs (always in play).
    fn initial_pairs(&self) -> Vec<(Elem, Elem)> {
        let mut pairs: Vec<(Elem, Elem)> = self
            .a
            .constants()
            .iter()
            .zip(self.b.constants())
            .map(|(&x, &y)| (x, y))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Decides `A ∼Gₙ B`: does the duplicator have a winning strategy in
    /// the `n`-round game?
    ///
    /// By the fundamental theorem this is equivalent to `A ≡ₙ B`.
    ///
    /// # Panics
    /// Panics if the solver's budget exhausts; use
    /// [`EfSolver::try_duplicator_wins`] with a budgeted solver.
    pub fn duplicator_wins(&mut self, rounds: u32) -> bool {
        self.try_duplicator_wins(rounds)
            .expect("budget exhausted in EfSolver::duplicator_wins; use try_duplicator_wins")
    }

    /// Budgeted [`EfSolver::duplicator_wins`]: stops cleanly when the
    /// budget runs out. The memo table keeps every position that was
    /// fully decided before the cutoff.
    pub fn try_duplicator_wins(&mut self, rounds: u32) -> BudgetResult<bool> {
        let mut span = fmt_obs::trace_span!("games.ef.depth", rounds = rounds);
        let init = self.initial_pairs();
        // The initial position must itself be a partial isomorphism
        // (constants must match up).
        if !fmt_structures::partial::is_partial_isomorphism(self.a, self.b, &[]) {
            span.record_field("win", false);
            return Ok(false);
        }
        let result = self.wins(&init, rounds);
        if let Ok(win) = &result {
            span.record_field("win", *win);
        }
        result
    }

    /// Decides duplicator win from an arbitrary mid-game position.
    ///
    /// `pairs` must already be a partial isomorphism (this is checked).
    pub fn duplicator_wins_from(&mut self, pairs: &[(Elem, Elem)], rounds: u32) -> bool {
        self.try_duplicator_wins_from(pairs, rounds)
            .expect("budget exhausted in EfSolver::duplicator_wins_from")
    }

    /// Budgeted [`EfSolver::duplicator_wins_from`].
    pub fn try_duplicator_wins_from(
        &mut self,
        pairs: &[(Elem, Elem)],
        rounds: u32,
    ) -> BudgetResult<bool> {
        assert!(
            fmt_structures::partial::is_partial_isomorphism(self.a, self.b, pairs),
            "starting position must be a partial isomorphism"
        );
        let mut p = [self.initial_pairs(), pairs.to_vec()].concat();
        p.sort_unstable();
        p.dedup();
        self.wins(&p, rounds)
    }

    fn wins(&mut self, pairs: &[(Elem, Elem)], n: u32) -> BudgetResult<bool> {
        self.budget.tick(AT)?;
        if n == 0 {
            return Ok(true);
        }
        let key = (pairs.to_vec(), n);
        if self.config.memoization {
            if let Some(&v) = self.memo.get(&key) {
                self.stats.memo_hits += 1;
                OBS_MEMO_HITS.incr();
                return Ok(v);
            }
            OBS_MEMO_MISSES.incr();
        }
        self.stats.expanded += 1;
        OBS_POSITIONS.incr();

        let result = self.expand(pairs, n)?;
        // Only fully decided positions are memoized: an exhausted search
        // unwinds without writing, so no partial verdict can leak into a
        // later run that reuses this solver.
        if self.config.memoization {
            self.memo.insert(key, result);
        }
        Ok(result)
    }

    fn expand(&mut self, pairs: &[(Elem, Elem)], n: u32) -> BudgetResult<bool> {
        // Spoiler plays in A.
        let moves_a: Vec<Elem> = self.spoiler_moves(self.a, pairs, |p| p.0);
        for x in moves_a {
            if self.try_reply_for(pairs, n, Side::Left, x)?.is_none() {
                return Ok(false);
            }
        }
        // Spoiler plays in B.
        let moves_b: Vec<Elem> = self.spoiler_moves(self.b, pairs, |p| p.1);
        for y in moves_b {
            if self.try_reply_for(pairs, n, Side::Right, y)?.is_none() {
                return Ok(false);
            }
        }
        // With pruning disabled, the move lists above already include
        // replays (handled inside `reply_for` by forcing the partner);
        // with pruning enabled, replays are sound to skip by
        // monotonicity: they only burn one of the spoiler's rounds.
        Ok(true)
    }

    fn spoiler_moves(
        &self,
        s: &Structure,
        pairs: &[(Elem, Elem)],
        side: impl Fn(&(Elem, Elem)) -> Elem,
    ) -> Vec<Elem> {
        let played: Vec<Elem> = pairs.iter().map(side).collect();
        s.domain()
            .filter(|v| {
                if self.config.fresh_move_pruning && played.contains(v) {
                    OBS_PRUNED.incr();
                    return false;
                }
                true
            })
            .collect()
    }

    /// Finds a winning duplicator reply to the spoiler move `x` on
    /// `side`, from position `pairs` with `n` rounds left (the move
    /// itself consumes one round). Returns `None` if every reply loses.
    ///
    /// # Panics
    /// Panics if the solver's budget exhausts; use
    /// [`EfSolver::try_reply_for`] with a budgeted solver.
    pub fn reply_for(
        &mut self,
        pairs: &[(Elem, Elem)],
        n: u32,
        side: Side,
        x: Elem,
    ) -> Option<Elem> {
        self.try_reply_for(pairs, n, side, x)
            .expect("budget exhausted in EfSolver::reply_for; use try_reply_for")
    }

    /// Budgeted [`EfSolver::reply_for`].
    pub fn try_reply_for(
        &mut self,
        pairs: &[(Elem, Elem)],
        n: u32,
        side: Side,
        x: Elem,
    ) -> BudgetResult<Option<Elem>> {
        debug_assert!(n >= 1);
        // Replayed element: the partner is forced.
        for &(p, q) in pairs {
            match side {
                Side::Left if p == x => {
                    return Ok(self.wins(pairs, n - 1)?.then_some(q));
                }
                Side::Right if q == x => {
                    return Ok(self.wins(pairs, n - 1)?.then_some(p));
                }
                _ => {}
            }
        }
        let (reply_structure, x_profile) = match side {
            Side::Left => (self.b, self.profile_a[x as usize]),
            Side::Right => (self.a, self.profile_b[x as usize]),
        };
        let mut candidates: Vec<Elem> = reply_structure.domain().collect();
        if self.config.profile_ordering {
            let profs = match side {
                Side::Left => &self.profile_b,
                Side::Right => &self.profile_a,
            };
            candidates.sort_by_key(|&y| (profs[y as usize] != x_profile, y));
        }
        for y in candidates {
            let (xa, yb) = match side {
                Side::Left => (x, y),
                Side::Right => (y, x),
            };
            if !extension_ok(self.a, self.b, pairs, xa, yb) {
                continue;
            }
            let mut next = pairs.to_vec();
            next.push((xa, yb));
            next.sort_unstable();
            next.dedup();
            if self.wins(&next, n - 1)? {
                return Ok(Some(y));
            }
        }
        Ok(None)
    }

    /// Finds a spoiler move that wins (for the spoiler) from a position
    /// the duplicator loses: returns `(side, element)` such that every
    /// duplicator reply leads to a duplicator loss. Returns `None` if
    /// the duplicator wins the position.
    ///
    /// # Panics
    /// Panics if the solver's budget exhausts; use
    /// [`EfSolver::try_spoiler_move_for`] with a budgeted solver.
    pub fn spoiler_move_for(&mut self, pairs: &[(Elem, Elem)], n: u32) -> Option<(Side, Elem)> {
        self.try_spoiler_move_for(pairs, n)
            .expect("budget exhausted in EfSolver::spoiler_move_for; use try_spoiler_move_for")
    }

    /// Budgeted [`EfSolver::spoiler_move_for`].
    pub fn try_spoiler_move_for(
        &mut self,
        pairs: &[(Elem, Elem)],
        n: u32,
    ) -> BudgetResult<Option<(Side, Elem)>> {
        if n == 0 || self.wins(pairs, n)? {
            return Ok(None);
        }
        for x in self.spoiler_moves(self.a, pairs, |p| p.0) {
            if self.try_reply_for(pairs, n, Side::Left, x)?.is_none() {
                return Ok(Some((Side::Left, x)));
            }
        }
        for y in self.spoiler_moves(self.b, pairs, |p| p.1) {
            if self.try_reply_for(pairs, n, Side::Right, y)?.is_none() {
                return Ok(Some((Side::Right, y)));
            }
        }
        // Unreachable: a losing position always has a losing fresh move
        // (replays cannot be the spoiler's only winning option, by
        // monotonicity).
        unreachable!("losing position without a winning spoiler move")
    }
}

/// The **game rank** of a pair of structures: the largest `n ≤ cap`
/// with `A ≡ₙ B`, i.e. how many rounds the duplicator survives.
///
/// Returns `cap` if the duplicator wins even the `cap`-round game (in
/// particular for isomorphic structures, where the duplicator wins
/// forever).
pub fn rank(a: &Structure, b: &Structure, cap: u32) -> u32 {
    try_rank(a, b, cap, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// Budgeted [`rank`]: stops cleanly when `budget` runs out.
pub fn try_rank(a: &Structure, b: &Structure, cap: u32, budget: &Budget) -> BudgetResult<u32> {
    let mut span = fmt_obs::trace_span!("games.ef.rank", cap = cap);
    let mut solver = EfSolver::with_budget(a, b, budget.clone());
    // Winning is antitone in n, so scan upward and stop at the first
    // loss (memo entries are shared between iterations). Each depth
    // probe records its own `games.ef.depth` child span.
    for n in 1..=cap {
        if !solver.try_duplicator_wins(n)? {
            span.record_field("rank", n - 1);
            return Ok(n - 1);
        }
    }
    span.record_field("rank", cap);
    Ok(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::{builders, iso};

    #[test]
    fn sets_game() {
        // Duplicator wins the n-round game on sets with ≥ n elements.
        let a = builders::set(4);
        let b = builders::set(7);
        let mut s = EfSolver::new(&a, &b);
        assert!(s.duplicator_wins(4));
        assert!(!s.duplicator_wins(5)); // spoiler plays 5 distinct in B
                                        // EVEN cannot be expressed: 2n vs 2n+1 elements agree to rank n.
        assert_eq!(rank(&builders::set(6), &builders::set(7), 10), 6);
    }

    #[test]
    fn equal_sets_equivalent_forever() {
        let a = builders::set(3);
        let b = builders::set(3);
        assert_eq!(rank(&a, &b, 8), 8);
    }

    #[test]
    fn empty_structures() {
        let e = builders::set(0);
        let one = builders::set(1);
        assert_eq!(rank(&e, &e, 5), 5);
        // Spoiler plays the single element of B; duplicator has no reply.
        assert_eq!(rank(&e, &one, 5), 0);
    }

    #[test]
    fn theorem_3_1_small_cases() {
        // L_m ≡_n L_k iff m = k or both ≥ 2^n − 1 (exact version of
        // Theorem 3.1; the paper states the weaker m, k ≥ 2^n).
        for m in 1..=9u32 {
            for k in 1..=9u32 {
                for n in 1..=3u32 {
                    let expected = m == k || (m >= (1 << n) - 1 && k >= (1 << n) - 1);
                    let a = builders::linear_order(m);
                    let b = builders::linear_order(k);
                    let mut s = EfSolver::new(&a, &b);
                    assert_eq!(s.duplicator_wins(n), expected, "L_{m} vs L_{k} at n = {n}");
                }
            }
        }
    }

    #[test]
    fn isomorphic_structures_win_deep_games() {
        let a = builders::undirected_cycle(5);
        let perm = [2, 4, 1, 3, 0];
        let b = a.relabel(&perm);
        assert!(iso::are_isomorphic(&a, &b));
        assert_eq!(rank(&a, &b, 5), 5);
    }

    #[test]
    fn cycle_pair_games() {
        // C_3 ⊎ C_3 vs C_6: duplicator wins few rounds, spoiler
        // eventually exposes the difference (walk around the cycle).
        let two = builders::copies(&builders::undirected_cycle(3), 2);
        let one = builders::undirected_cycle(6);
        let r = rank(&two, &one, 6);
        assert!(r >= 1, "at least one round is survivable");
        assert!(r < 6, "the structures are distinguishable, rank {r}");
    }

    #[test]
    fn directed_path_vs_cycle() {
        // A directed path has a source (no in-edges); a cycle does not.
        // Sentence ∃x∀y ¬E(y,x) has rank 2, so rank(path, cycle) < 2.
        let p = builders::directed_path(8);
        let c = builders::directed_cycle(8);
        assert!(rank(&p, &c, 4) < 2);
    }

    #[test]
    fn mid_game_positions() {
        let a = builders::linear_order(5);
        let b = builders::linear_order(5);
        let mut s = EfSolver::new(&a, &b);
        // Matching 0 ↦ 0 is consistent with the identity: wins deeply.
        assert!(s.duplicator_wins_from(&[(0, 0)], 4));
        // Matching the minimum to the maximum dies quickly: spoiler
        // plays something below the maximum on the right.
        assert!(!s.duplicator_wins_from(&[(0, 4)], 1));
    }

    #[test]
    #[should_panic(expected = "partial isomorphism")]
    fn invalid_start_position_rejected() {
        let a = builders::linear_order(3);
        let b = builders::linear_order(3);
        let mut s = EfSolver::new(&a, &b);
        // (0,0) and (1,0) is not injective.
        s.duplicator_wins_from(&[(0, 0), (1, 0)], 1);
    }

    #[test]
    fn config_variants_agree() {
        let pairs = [
            (builders::linear_order(4), builders::linear_order(6)),
            (builders::undirected_cycle(4), builders::undirected_cycle(5)),
            (builders::directed_path(4), builders::directed_cycle(4)),
            (builders::set(3), builders::set(5)),
        ];
        let configs = [
            SolverConfig::default(),
            SolverConfig {
                memoization: false,
                fresh_move_pruning: true,
                profile_ordering: true,
            },
            SolverConfig {
                memoization: true,
                fresh_move_pruning: false,
                profile_ordering: true,
            },
            SolverConfig {
                memoization: true,
                fresh_move_pruning: true,
                profile_ordering: false,
            },
            SolverConfig {
                memoization: false,
                fresh_move_pruning: false,
                profile_ordering: false,
            },
        ];
        for (a, b) in &pairs {
            for n in 1..=3u32 {
                let reference = EfSolver::new(a, b).duplicator_wins(n);
                for cfg in configs {
                    assert_eq!(
                        EfSolver::with_config(a, b, cfg).duplicator_wins(n),
                        reference,
                        "config {cfg:?} disagrees at n = {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn constants_participate() {
        use fmt_structures::{Signature, StructureBuilder};
        let sig = Signature::builder()
            .relation("E", 2)
            .constant("c")
            .finish_arc();
        let e = sig.relation("E").unwrap();
        let c = sig.constant("c").unwrap();
        let mk = |cval: Elem| {
            let mut b = StructureBuilder::new(sig.clone(), 3);
            b.add(e, &[0, 1]).unwrap();
            b.set_constant(c, cval);
            b.build().unwrap()
        };
        // c at the edge's source vs c at an isolated vertex: the
        // difference shows up in one round (play a witness of E(c, ·)).
        let src = mk(0);
        let isolated = mk(2);
        let mut s = EfSolver::new(&src, &isolated);
        assert!(!s.duplicator_wins(1));
        // Same constant placement: isomorphic.
        let same = mk(0);
        let mut t = EfSolver::new(&src, &same);
        assert!(t.duplicator_wins(3));
    }

    #[test]
    fn spoiler_move_extraction() {
        let a = builders::set(2);
        let b = builders::set(4);
        let mut s = EfSolver::new(&a, &b);
        assert!(!s.duplicator_wins(3));
        let (side, _x) = s.spoiler_move_for(&[], 3).expect("spoiler wins");
        // Any first move works for the spoiler here (3 distinct plays in
        // the 4-set eventually exhaust the 2-set), so just check a move
        // exists on some side.
        assert!(matches!(side, Side::Left | Side::Right));
        // Duplicator-winning positions yield no spoiler move.
        assert!(s.spoiler_move_for(&[], 2).is_none());
    }

    #[test]
    fn stats_reflect_memoization() {
        let a = builders::linear_order(6);
        let b = builders::linear_order(7);
        let mut with = EfSolver::new(&a, &b);
        with.duplicator_wins(3);
        let mut without = EfSolver::with_config(
            &a,
            &b,
            SolverConfig {
                memoization: false,
                ..SolverConfig::default()
            },
        );
        without.duplicator_wins(3);
        assert!(with.stats.memo_hits > 0);
        assert!(without.stats.expanded >= with.stats.expanded);
    }
}
