//! The bijective Ehrenfeucht–Fraïssé game — the counting extension.
//!
//! In each round of the bijective game the **duplicator** first commits
//! to a bijection `f : A → B`; the spoiler then picks `a ∈ A` and the
//! pair `(a, f(a))` joins the position, which must stay a partial
//! isomorphism. Duplicator wins ⟹ the structures agree on FO with
//! counting quantifiers (of matching rank), which is why the bijective
//! game is *harder* for the duplicator than the plain EF game.
//!
//! The key implementation insight: the duplicator needs a bijection `f`
//! such that **every** element `a` is a good move, and goodness of
//! `(a, f(a))` does not depend on the rest of `f`. So a winning
//! bijection exists iff the bipartite graph
//! `{(a, b) | (a, b) extends the position ∧ duplicator wins from it}`
//! has a perfect matching — decided here by augmenting paths, with the
//! game value memoized per position.

use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::partial::extension_ok;
use fmt_structures::{Elem, Structure};
use std::collections::HashMap;

/// Budget tick site label for this engine.
const AT: &str = "games.bijection";

/// Exact solver for the bijective EF game.
#[derive(Debug)]
pub struct BijectionGameSolver<'a> {
    a: &'a Structure,
    b: &'a Structure,
    budget: Budget,
    memo: HashMap<(Vec<(Elem, Elem)>, u32), bool>,
}

impl<'a> BijectionGameSolver<'a> {
    /// Creates a solver for the bijective games on `(a, b)`.
    ///
    /// # Panics
    /// Panics if the signatures differ.
    pub fn new(a: &'a Structure, b: &'a Structure) -> BijectionGameSolver<'a> {
        assert_eq!(
            a.signature(),
            b.signature(),
            "games need a common signature"
        );
        BijectionGameSolver {
            a,
            b,
            budget: Budget::unlimited(),
            memo: HashMap::new(),
        }
    }

    /// Creates a solver that consults `budget` on every visited
    /// position; use [`BijectionGameSolver::try_duplicator_wins`] to
    /// observe exhaustion.
    ///
    /// # Panics
    /// Panics if the signatures differ.
    pub fn with_budget(
        a: &'a Structure,
        b: &'a Structure,
        budget: Budget,
    ) -> BijectionGameSolver<'a> {
        let mut s = BijectionGameSolver::new(a, b);
        s.budget = budget;
        s
    }

    /// Decides whether the duplicator wins the `rounds`-round bijective
    /// game. Structures of different sizes admit no bijection: the
    /// duplicator loses any game with at least one round.
    ///
    /// # Panics
    /// Panics if the solver's budget exhausts; use
    /// [`BijectionGameSolver::try_duplicator_wins`] with a budgeted
    /// solver.
    pub fn duplicator_wins(&mut self, rounds: u32) -> bool {
        self.try_duplicator_wins(rounds).expect(
            "budget exhausted in BijectionGameSolver::duplicator_wins; use try_duplicator_wins",
        )
    }

    /// Budgeted [`BijectionGameSolver::duplicator_wins`]: stops cleanly
    /// when the budget runs out; only fully decided positions are
    /// memoized.
    pub fn try_duplicator_wins(&mut self, rounds: u32) -> BudgetResult<bool> {
        let mut span = fmt_obs::trace_span!("games.bijection.depth", rounds = rounds);
        if !fmt_structures::partial::is_partial_isomorphism(self.a, self.b, &[]) {
            span.record_field("win", false);
            return Ok(false);
        }
        if rounds > 0 && self.a.size() != self.b.size() {
            span.record_field("win", false);
            return Ok(false);
        }
        let result = self.wins(&[], rounds);
        if let Ok(win) = &result {
            span.record_field("win", *win);
        }
        result
    }

    fn wins(&mut self, pairs: &[(Elem, Elem)], n: u32) -> BudgetResult<bool> {
        self.budget.tick(AT)?;
        if n == 0 {
            return Ok(true);
        }
        let key = (pairs.to_vec(), n);
        if let Some(&v) = self.memo.get(&key) {
            return Ok(v);
        }
        let na = self.a.size() as usize;
        // Admissible edges: (a, b) that keep the position winning.
        let mut adj: Vec<Vec<Elem>> = vec![Vec::new(); na];
        for x in self.a.domain() {
            for y in self.b.domain() {
                if extension_ok(self.a, self.b, pairs, x, y) {
                    let mut next = pairs.to_vec();
                    next.push((x, y));
                    next.sort_unstable();
                    next.dedup();
                    if self.wins(&next, n - 1)? {
                        adj[x as usize].push(y);
                    }
                }
            }
        }
        let result = perfect_matching(&adj, self.b.size() as usize);
        self.memo.insert(key, result);
        Ok(result)
    }
}

/// Decides whether the bipartite graph `adj` (left vertex `i` adjacent
/// to the listed right vertices) has a perfect matching, by augmenting
/// paths.
fn perfect_matching(adj: &[Vec<Elem>], right_size: usize) -> bool {
    if adj.len() != right_size {
        return false;
    }
    let mut match_right: Vec<Option<usize>> = vec![None; right_size];
    fn augment(
        u: usize,
        adj: &[Vec<Elem>],
        match_right: &mut Vec<Option<usize>>,
        visited: &mut Vec<bool>,
    ) -> bool {
        for &v in &adj[u] {
            let v = v as usize;
            if visited[v] {
                continue;
            }
            visited[v] = true;
            if match_right[v].is_none()
                || augment(match_right[v].unwrap(), adj, match_right, visited)
            {
                match_right[v] = Some(u);
                return true;
            }
        }
        false
    }
    for u in 0..adj.len() {
        let mut visited = vec![false; right_size];
        if !augment(u, adj, &mut match_right, &mut visited) {
            return false;
        }
    }
    true
}

/// Convenience wrapper: duplicator win in the `rounds`-round bijective
/// game.
pub fn bijection_duplicator_wins(a: &Structure, b: &Structure, rounds: u32) -> bool {
    try_bijection_duplicator_wins(a, b, rounds, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budgeted [`bijection_duplicator_wins`].
pub fn try_bijection_duplicator_wins(
    a: &Structure,
    b: &Structure,
    rounds: u32,
    budget: &Budget,
) -> BudgetResult<bool> {
    BijectionGameSolver::with_budget(a, b, budget.clone()).try_duplicator_wins(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmt_structures::builders;

    #[test]
    fn size_mismatch_loses_immediately() {
        let a = builders::set(3);
        let b = builders::set(4);
        assert!(!bijection_duplicator_wins(&a, &b, 1));
        assert!(bijection_duplicator_wins(&a, &b, 0));
    }

    #[test]
    fn equal_sets_win_forever() {
        let a = builders::set(4);
        let b = builders::set(4);
        assert!(bijection_duplicator_wins(&a, &b, 4));
    }

    #[test]
    fn isomorphic_structures_win() {
        let a = builders::undirected_cycle(5);
        let b = a.relabel(&[4, 0, 1, 2, 3]);
        assert!(bijection_duplicator_wins(&a, &b, 4));
    }

    #[test]
    fn bijective_win_implies_ef_win() {
        let pairs = [
            (
                builders::copies(&builders::undirected_cycle(3), 2),
                builders::undirected_cycle(6),
            ),
            (builders::directed_path(5), builders::directed_cycle(5)),
            (builders::linear_order(5), builders::linear_order(5)),
        ];
        for (a, b) in &pairs {
            for n in 1..=3u32 {
                if bijection_duplicator_wins(a, b, n) {
                    assert!(
                        crate::solver::EfSolver::new(a, b).duplicator_wins(n),
                        "bijective win must imply EF win at n = {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn degree_census_mismatch_caught_in_two_rounds() {
        // Path P4 vs star K_{1,3}, both 4 vertices and 3 undirected
        // edges, different degree multisets: any bijection must map some
        // degree-1 vertex of the path onto the star's center or a leaf
        // inconsistently; two rounds expose it.
        use fmt_structures::{Signature, StructureBuilder};
        let sig = Signature::graph();
        let e = sig.relation("E").unwrap();
        let mut sb = StructureBuilder::new(sig, 4);
        for v in 1..4 {
            sb.add(e, &[0, v]).unwrap();
            sb.add(e, &[v, 0]).unwrap();
        }
        let star = sb.build().unwrap();
        let path = builders::undirected_path(4);
        assert!(!bijection_duplicator_wins(&path, &star, 2));
    }

    #[test]
    fn matching_helper() {
        // Perfect matching exists.
        assert!(perfect_matching(&[vec![0, 1], vec![0]], 2));
        // Both left vertices compete for one right vertex.
        assert!(!perfect_matching(&[vec![0], vec![0]], 2));
        assert!(perfect_matching(&[], 0));
        assert!(!perfect_matching(&[vec![]], 1));
    }
}
