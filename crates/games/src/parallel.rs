//! Parallel EF game solving.
//!
//! The top level of the game tree is embarrassingly parallel: the
//! duplicator wins `Gₙ(A, B)` iff **every** spoiler first move has a
//! winning reply, and those first moves are independent. This module
//! fans the first moves out over scoped threads via
//! [`fmt_structures::par::fan_out`] (each worker owns its own memoized
//! [`EfSolver`]), with early cancellation as soon as one unanswerable
//! move is found.
//!
//! Worth it only when single positions are expensive (larger
//! structures, deeper games); the `ef_games` bench compares. Results
//! are bit-for-bit identical to the serial solver (asserted in tests).

use crate::solver::{EfSolver, Side};
use fmt_structures::budget::{Budget, BudgetResult};
use fmt_structures::par::fan_out;
use fmt_structures::{Elem, Structure};
use std::sync::atomic::{AtomicBool, Ordering};

/// First moves actually examined by workers (at most `|A| + |B|` per
/// call; fewer when a refutation cancels the rest).
static OBS_FIRST_MOVES: fmt_obs::Counter = fmt_obs::Counter::new("games.parallel.first_moves");
static OBS_CANCELLED: fmt_obs::Counter = fmt_obs::Counter::new("games.parallel.cancellations");

/// Decides `A ∼Gₙ B` with the top layer of spoiler moves evaluated in
/// parallel across `threads` workers.
///
/// # Panics
/// Panics if `threads == 0` or the signatures differ.
pub fn duplicator_wins_parallel(a: &Structure, b: &Structure, rounds: u32, threads: usize) -> bool {
    try_duplicator_wins_parallel(a, b, rounds, threads, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budgeted [`duplicator_wins_parallel`]: all workers share `budget`
/// (one clone each), so fuel exhaustion or external cancellation stops
/// every shard cooperatively.
///
/// A refutation wins over exhaustion: if any worker finds an
/// unanswerable spoiler move the answer is definitively `Ok(false)`,
/// even when other shards ran out of budget.
///
/// # Panics
/// Panics if `threads == 0` or the signatures differ.
pub fn try_duplicator_wins_parallel(
    a: &Structure,
    b: &Structure,
    rounds: u32,
    threads: usize,
    budget: &Budget,
) -> BudgetResult<bool> {
    assert!(threads >= 1);
    assert_eq!(
        a.signature(),
        b.signature(),
        "games need a common signature"
    );
    let mut span =
        fmt_obs::trace_span!("games.parallel.search", rounds = rounds, threads = threads);
    if rounds == 0 {
        return Ok(fmt_structures::partial::is_partial_isomorphism(a, b, &[]));
    }
    if !fmt_structures::partial::is_partial_isomorphism(a, b, &[]) {
        span.record_field("win", false);
        return Ok(false);
    }
    // All first moves (fresh-move pruning applies trivially: nothing has
    // been played, so every element is fresh).
    let mut moves: Vec<(Side, Elem)> = Vec::with_capacity((a.size() + b.size()) as usize);
    moves.extend(a.domain().map(|x| (Side::Left, x)));
    moves.extend(b.domain().map(|y| (Side::Right, y)));
    span.record_field("moves", moves.len());
    if moves.is_empty() {
        span.record_field("win", true);
        return Ok(true); // both empty: isomorphic
    }

    let refuted = AtomicBool::new(false);
    // Each chunk reports Ok(true) = all moves answered, Ok(false) = a
    // refutation was found, Err = budget exhausted mid-chunk.
    let outcomes: Vec<BudgetResult<bool>> = fan_out(threads, &moves, |work| {
        let mut chunk_span = fmt_obs::trace_span!("games.parallel.chunk", moves = work.len());
        let mut solver = EfSolver::with_budget(a, b, budget.clone());
        let mut examined = 0u64;
        for &(side, x) in work {
            if refuted.load(Ordering::Relaxed) {
                OBS_CANCELLED.incr();
                chunk_span.record_field("examined", examined);
                return Ok(true);
            }
            OBS_FIRST_MOVES.incr();
            examined += 1;
            if solver
                .try_reply_for(&initial_pairs(a, b), rounds, side, x)?
                .is_none()
            {
                refuted.store(true, Ordering::Relaxed);
                chunk_span.record_field("examined", examined);
                return Ok(false);
            }
        }
        chunk_span.record_field("examined", examined);
        Ok(true)
    });
    if refuted.load(Ordering::Relaxed) {
        span.record_field("win", false);
        return Ok(false);
    }
    for outcome in outcomes {
        outcome?;
    }
    span.record_field("win", true);
    Ok(true)
}

fn initial_pairs(a: &Structure, b: &Structure) -> Vec<(Elem, Elem)> {
    let mut pairs: Vec<(Elem, Elem)> = a
        .constants()
        .iter()
        .zip(b.constants())
        .map(|(&x, &y)| (x, y))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Parallel version of [`crate::solver::rank`].
pub fn rank_parallel(a: &Structure, b: &Structure, cap: u32, threads: usize) -> u32 {
    try_rank_parallel(a, b, cap, threads, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budgeted [`rank_parallel`].
pub fn try_rank_parallel(
    a: &Structure,
    b: &Structure,
    cap: u32,
    threads: usize,
    budget: &Budget,
) -> BudgetResult<u32> {
    for n in 1..=cap {
        if !try_duplicator_wins_parallel(a, b, n, threads, budget)? {
            return Ok(n - 1);
        }
    }
    Ok(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::rank;
    use fmt_structures::builders;

    #[test]
    fn agrees_with_serial_on_orders() {
        for m in 1..=8u32 {
            for k in 1..=8u32 {
                for n in 1..=3u32 {
                    let a = builders::linear_order(m);
                    let b = builders::linear_order(k);
                    let serial = EfSolver::new(&a, &b).duplicator_wins(n);
                    for threads in [1, 2, 4] {
                        assert_eq!(
                            duplicator_wins_parallel(&a, &b, n, threads),
                            serial,
                            "L_{m} vs L_{k}, n = {n}, threads = {threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_with_serial_on_graphs() {
        let pairs = [
            (
                builders::copies(&builders::undirected_cycle(3), 2),
                builders::undirected_cycle(6),
            ),
            (builders::directed_path(6), builders::directed_cycle(6)),
            (builders::set(4), builders::set(6)),
        ];
        for (a, b) in &pairs {
            for n in 1..=3u32 {
                assert_eq!(
                    duplicator_wins_parallel(a, b, n, 4),
                    EfSolver::new(a, b).duplicator_wins(n)
                );
            }
        }
    }

    #[test]
    fn rank_parallel_matches() {
        let a = builders::linear_order(7);
        let b = builders::linear_order(9);
        assert_eq!(rank_parallel(&a, &b, 4, 3), rank(&a, &b, 4));
    }

    #[test]
    fn degenerate_cases() {
        let e = builders::set(0);
        assert!(duplicator_wins_parallel(&e, &e, 3, 2));
        let one = builders::set(1);
        assert!(!duplicator_wins_parallel(&e, &one, 1, 2));
        assert!(duplicator_wins_parallel(&one, &one, 0, 2));
    }

    #[test]
    fn constants_respected() {
        use fmt_structures::{Signature, StructureBuilder};
        let sig = Signature::builder()
            .relation("E", 2)
            .constant("c")
            .finish_arc();
        let e = sig.relation("E").unwrap();
        let c = sig.constant("c").unwrap();
        let mk = |cval| {
            let mut b = StructureBuilder::new(sig.clone(), 3);
            b.add(e, &[0, 1]).unwrap();
            b.set_constant(c, cval);
            b.build().unwrap()
        };
        let a = mk(0);
        let b = mk(2);
        assert!(!duplicator_wins_parallel(&a, &b, 1, 2));
        let b2 = mk(0);
        assert!(duplicator_wins_parallel(&a, &b2, 3, 2));
    }
}
