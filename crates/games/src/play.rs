//! Playing games move by move: traces, scripted/random spoilers, and
//! solver- or closed-form-backed duplicators.
//!
//! The solver decides who wins; this module *plays the games out*, which
//! is how closed-form strategies are attacked by random adversaries and
//! how the examples print instructive game transcripts.

use crate::solver::{EfSolver, Side};
use fmt_structures::partial::{extension_ok, is_partial_isomorphism};
use fmt_structures::{Elem, Structure};
use rand::{Rng, RngExt};

static OBS_GAMES: fmt_obs::Counter = fmt_obs::Counter::new("games.play.games");
static OBS_ROUNDS: fmt_obs::Counter = fmt_obs::Counter::new("games.play.rounds");

/// One round of play: the spoiler's pick and the duplicator's reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round {
    /// Which structure the spoiler chose.
    pub side: Side,
    /// The spoiler's element (in `side`).
    pub spoiler: Elem,
    /// The duplicator's reply (in the other structure).
    pub duplicator: Elem,
}

/// A completed (or lost) game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GameTrace {
    /// The rounds played, in order.
    pub rounds: Vec<Round>,
    /// `true` if the duplicator maintained a partial isomorphism through
    /// all requested rounds.
    pub duplicator_survived: bool,
}

impl GameTrace {
    /// The played pairs `(a, b)` in order.
    pub fn pairs(&self) -> Vec<(Elem, Elem)> {
        self.rounds
            .iter()
            .map(|r| match r.side {
                Side::Left => (r.spoiler, r.duplicator),
                Side::Right => (r.duplicator, r.spoiler),
            })
            .collect()
    }

    /// Re-validates the trace: every prefix of the played pairs must be
    /// a partial isomorphism iff the trace claims survival.
    pub fn check(&self, a: &Structure, b: &Structure) -> bool {
        let pairs = self.pairs();
        for i in 1..=pairs.len() {
            let ok = is_partial_isomorphism(a, b, &pairs[..i]);
            if !ok {
                // Losing traces must lose exactly at the last move.
                return !self.duplicator_survived && i == pairs.len();
            }
        }
        self.duplicator_survived
    }
}

/// Plays an `rounds`-round game with closure-driven players.
///
/// * `spoiler(pairs, rounds_left)` returns the side and element picked;
/// * `duplicator(pairs, rounds_left, side, x)` returns the reply, or
///   `None` to resign.
///
/// The game stops early (with `duplicator_survived = false`) as soon as
/// the position stops being a partial isomorphism.
pub fn play(
    a: &Structure,
    b: &Structure,
    rounds: u32,
    mut spoiler: impl FnMut(&[(Elem, Elem)], u32) -> (Side, Elem),
    mut duplicator: impl FnMut(&[(Elem, Elem)], u32, Side, Elem) -> Option<Elem>,
) -> GameTrace {
    let mut pairs: Vec<(Elem, Elem)> = Vec::new();
    let mut trace = Vec::new();
    OBS_GAMES.incr();
    for left in (1..=rounds).rev() {
        OBS_ROUNDS.incr();
        let (side, x) = spoiler(&pairs, left);
        let reply = duplicator(&pairs, left, side, x);
        let Some(y) = reply else {
            return GameTrace {
                rounds: trace,
                duplicator_survived: false,
            };
        };
        let pair = match side {
            Side::Left => (x, y),
            Side::Right => (y, x),
        };
        let ok = extension_ok(a, b, &pairs, pair.0, pair.1);
        pairs.push(pair);
        trace.push(Round {
            side,
            spoiler: x,
            duplicator: y,
        });
        if !ok {
            return GameTrace {
                rounds: trace,
                duplicator_survived: false,
            };
        }
    }
    GameTrace {
        rounds: trace,
        duplicator_survived: true,
    }
}

/// Plays `trials` games with a uniformly random spoiler against the
/// given duplicator; returns the number of games the duplicator
/// survived.
pub fn attack_with_random_spoiler<R: Rng + ?Sized>(
    a: &Structure,
    b: &Structure,
    rounds: u32,
    trials: u32,
    rng: &mut R,
    mut duplicator: impl FnMut(&[(Elem, Elem)], u32, Side, Elem) -> Option<Elem>,
) -> u32 {
    let mut survived = 0;
    for _ in 0..trials {
        let trace = play(
            a,
            b,
            rounds,
            |_pairs, _left| {
                let side = if (a.size() == 0 || rng.random_bool(0.5)) && b.size() > 0 {
                    Side::Right
                } else {
                    Side::Left
                };
                let x = match side {
                    Side::Left => rng.random_range(0..a.size()),
                    Side::Right => rng.random_range(0..b.size()),
                };
                (side, x)
            },
            &mut duplicator,
        );
        if trace.duplicator_survived {
            survived += 1;
        }
    }
    survived
}

/// Plays the game with both players backed by the exact solver: the
/// spoiler plays a winning attack whenever one exists (otherwise its
/// first fresh element), the duplicator plays winning replies whenever
/// they exist (otherwise any legal-looking reply). The resulting trace
/// demonstrates the game value.
pub fn optimal_play(a: &Structure, b: &Structure, rounds: u32) -> GameTrace {
    OBS_GAMES.incr();
    let mut solver = EfSolver::new(a, b);
    let mut pairs: Vec<(Elem, Elem)> = Vec::new();
    let mut trace = Vec::new();
    for left in (1..=rounds).rev() {
        OBS_ROUNDS.incr();
        let (side, x) = match solver.spoiler_move_for(&sorted(&pairs), left) {
            Some(m) => m,
            None => {
                // Duplicator wins — spoiler probes with a fresh element.
                let fresh_a = a.size() > 0 && !pairs.iter().any(|p| p.0 == 0);
                if fresh_a {
                    (Side::Left, 0)
                } else if b.size() > 0 {
                    (Side::Right, 0)
                } else {
                    // Nothing to play at all; game trivially survives.
                    break;
                }
            }
        };
        let y = solver
            .reply_for(&sorted(&pairs), left, side, x)
            .or_else(|| {
                // Duplicator is lost; still prefer a *legal* reply (one
                // preserving the partial isomorphism) so traces lose as
                // late as possible, falling back to element 0.
                let (candidates, mk) = match side {
                    Side::Left => (b.domain(), true),
                    Side::Right => (a.domain(), false),
                };
                let legal = candidates.clone().find(|&y| {
                    let (pa, pb) = if mk { (x, y) } else { (y, x) };
                    extension_ok(a, b, &pairs, pa, pb)
                });
                legal.or_else(|| candidates.clone().next())
            });
        let Some(y) = y else {
            return GameTrace {
                rounds: trace,
                duplicator_survived: false,
            };
        };
        let pair = match side {
            Side::Left => (x, y),
            Side::Right => (y, x),
        };
        let ok = extension_ok(a, b, &pairs, pair.0, pair.1);
        pairs.push(pair);
        trace.push(Round {
            side,
            spoiler: x,
            duplicator: y,
        });
        if !ok {
            return GameTrace {
                rounds: trace,
                duplicator_survived: false,
            };
        }
    }
    GameTrace {
        rounds: trace,
        duplicator_survived: true,
    }
}

fn sorted(pairs: &[(Elem, Elem)]) -> Vec<(Elem, Elem)> {
    let mut p = pairs.to_vec();
    p.sort_unstable();
    p.dedup();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;
    use fmt_structures::builders;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solver_duplicator_survives_random_attacks_when_winning() {
        // L_7 vs L_8 at n = 3: duplicator wins; the solver-backed
        // duplicator must survive every random attack.
        let a = builders::linear_order(7);
        let b = builders::linear_order(8);
        let mut solver = EfSolver::new(&a, &b);
        assert!(solver.duplicator_wins(3));
        let mut rng = StdRng::seed_from_u64(5);
        let survived =
            attack_with_random_spoiler(&a, &b, 3, 50, &mut rng, |pairs, left, side, x| {
                solver.reply_for(&sorted(pairs), left, side, x)
            });
        assert_eq!(survived, 50);
    }

    #[test]
    fn closed_form_order_duplicator_survives_random_attacks() {
        let (m, k) = (15u32, 23u32);
        let a = builders::linear_order(m);
        let b = builders::linear_order(k);
        // Both ≥ 2^4 − 1 = 15: duplicator wins 4 rounds.
        let mut rng = StdRng::seed_from_u64(9);
        let survived =
            attack_with_random_spoiler(&a, &b, 4, 200, &mut rng, |pairs, left, side, x| {
                closed_form::order_reply(pairs, side == Side::Left, x, m as u64, k as u64, left - 1)
            });
        assert_eq!(survived, 200);
    }

    #[test]
    fn optimal_play_matches_game_value() {
        // Spoiler wins: L_2 vs L_3 at n = 2 (2 < 2^2 − 1 = 3).
        let a = builders::linear_order(2);
        let b = builders::linear_order(3);
        let t = optimal_play(&a, &b, 2);
        assert!(!t.duplicator_survived);
        assert!(t.check(&a, &b));
        // Duplicator wins: L_3 vs L_4 at n = 2.
        let c = builders::linear_order(3);
        let d = builders::linear_order(4);
        let t2 = optimal_play(&c, &d, 2);
        assert!(t2.duplicator_survived);
        assert!(t2.check(&c, &d));
        assert_eq!(t2.rounds.len(), 2);
    }

    #[test]
    fn trace_check_rejects_forged_survival() {
        let a = builders::linear_order(4);
        let b = builders::linear_order(4);
        let bogus = GameTrace {
            rounds: vec![
                Round {
                    side: Side::Left,
                    spoiler: 0,
                    duplicator: 3,
                },
                Round {
                    side: Side::Left,
                    spoiler: 1,
                    duplicator: 1,
                },
            ],
            duplicator_survived: true,
        };
        // 0 ↦ 3 and 1 ↦ 1 reverses the order: not a partial iso.
        assert!(!bogus.check(&a, &b));
    }

    #[test]
    fn sets_closed_form_survives() {
        let a = builders::set(6);
        let b = builders::set(9);
        let mut rng = StdRng::seed_from_u64(3);
        let survived =
            attack_with_random_spoiler(&a, &b, 6, 100, &mut rng, |pairs, _left, side, x| {
                let other = if side == Side::Left { 9 } else { 6 };
                closed_form::set_reply(pairs, side == Side::Left, x, other)
            });
        assert_eq!(survived, 100);
    }
}
