//! # fmt-games
//!
//! Ehrenfeucht–Fraïssé games — the fundamental inexpressibility tool of
//! the finite model theory toolbox (Libkin, PODS'09, §3.2).
//!
//! In the `n`-round game `Gₙ(A, B)` the **spoiler** tries to expose a
//! difference between two structures and the **duplicator** tries to
//! hide it: each round the spoiler picks an element of one structure and
//! the duplicator answers in the other; the duplicator wins if the
//! played pairs (plus constants) always form a partial isomorphism. The
//! fundamental theorem makes this a proof tool:
//!
//! > `A ∼Gₙ B` (duplicator has a winning strategy) **iff** `A ≡ₙ B`
//! > (`A` and `B` agree on all FO sentences of quantifier rank ≤ n).
//!
//! This crate provides:
//!
//! * [`solver::EfSolver`] — an exact, memoized decision procedure for
//!   `A ∼Gₙ B`, with on-demand winning strategies for either player and
//!   ablation switches for its optimizations;
//! * [`solver::rank`] — the largest `n` with `A ≡ₙ B`;
//! * [`closed_form`] — the survey's "library of winning strategies":
//!   pure sets and linear orders (Theorem 3.1:
//!   `L_m ≡ₙ L_k` for `m, k ≥ 2ⁿ`), cross-validated against the exact
//!   solver;
//! * [`play`] — game traces: replay a strategy against scripted or
//!   random spoilers;
//! * [`parallel`] — the top game-tree layer fanned out over threads;
//! * [`pebble`] — k-pebble games (the finite-variable fragments `FOᵏ`);
//! * [`bijection`] — the bijective EF game (counting extensions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bijection;
pub mod closed_form;
pub mod parallel;
pub mod pebble;
pub mod play;
pub mod solver;

pub use solver::{rank, EfSolver, SolverConfig};
