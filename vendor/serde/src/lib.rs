//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and
//! macro namespaces so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(...)]` compiles unchanged. The derives are no-ops; the
//! `derive` and `rc` features exist only so feature lists written for
//! the real crate keep resolving.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
