//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface this workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] core trait,
//! and the [`RngExt`] convenience methods `random_bool` / `random_range`.
//! The core generator is splitmix64 — statistically strong enough for
//! Monte-Carlo tests, trivially reproducible per seed, and dependency
//! free.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (high half of a `u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end - start) as u64 + 1;
                if width == 0 {
                    // Full-width range: every value is fair game.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Convenience draws, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits -> uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A deterministic splitmix64 generator.
    ///
    /// Not cryptographic; equidistributed and fast, with a full 2⁶⁴
    /// period over its counter. Identical seeds yield identical
    /// streams on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so that nearby seeds (0, 1, 2, ...)
            // start from well-separated states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: z ^ (z >> 31),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..9);
            assert!((3..9).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = rng.random_range(0..10usize);
            assert!(z < 10);
        }
    }

    #[test]
    fn bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn u64_stream_looks_uniform() {
        // Crude equidistribution check: the mean of the top bit.
        let mut rng = StdRng::seed_from_u64(3);
        let ones = (0..10_000).filter(|_| rng.next_u64() >> 63 == 1).count();
        assert!((4500..5500).contains(&ones), "{ones}");
    }
}
