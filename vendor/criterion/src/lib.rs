//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! `cargo bench` gets a smoke harness: every benchmark body runs once
//! and its wall time is printed. No warm-up, sampling, or statistics —
//! real measurements should come from the `fmt-obs` instrumentation.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one("", &id.to_string(), f);
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the smoke harness always runs
    /// each body exactly once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&self.name, &id.to_string(), f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl fmt::Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.elapsed);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    report(group, id, b.elapsed);
}

fn report(group: &str, id: &str, elapsed: Duration) {
    if group.is_empty() {
        println!("bench {id}: {elapsed:?} (single pass)");
    } else {
        println!("bench {group}/{id}: {elapsed:?} (single pass)");
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once and records its wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        black_box(&out);
    }
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups, ignoring harness args.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        let mut ran = 0u32;
        g.bench_function("direct", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &n| {
            b.iter(|| ran += n)
        });
        g.finish();
        assert_eq!(ran, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("naive", 16).to_string(), "naive/16");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
