//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The workspace annotates types with `derive(Serialize, Deserialize)`
//! and `#[serde(...)]` field attributes but never serializes at
//! runtime, so these derives expand to nothing. Registering `serde` as
//! a helper attribute keeps `#[serde(skip, default)]`-style annotations
//! compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
