//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! A strategy here is simply a seeded sampler: `proptest!` expands each
//! test into a loop that draws `cases` inputs from the argument
//! strategies and runs the body, which returns
//! `Result<(), TestCaseError>` so `prop_assert!`-style early exits and
//! explicit `return Ok(())` both work. There is **no shrinking** and no
//! failure persistence; the RNG seed is derived from the test name, so
//! every run of a given test sees the same cases and failures reproduce
//! exactly (the panic message carries the failing case index).

pub mod test_runner {
    //! Configuration, RNG, and failure plumbing for generated tests.

    use std::fmt;

    /// Deterministic splitmix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x6A09_E667_F3BC_C908,
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..bound`.
        ///
        /// # Panics
        /// Panics if `bound == 0`.
        pub fn next_below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty choice");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError { msg }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Subset of proptest's config: the number of cases per test.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each `proptest!` test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a over a string; used to give each test its own RNG seed.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! Samplable value generators and their combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds recursive values: `self` generates the leaves and
        /// `expand` wraps an inner strategy into composite cases. The
        /// recursion is unrolled `depth` times up front, mixing leaves
        /// in at every level so sampled values vary in depth. The
        /// `_size`/`_branch` hints of the real API are accepted and
        /// ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut s = leaf.clone();
            for _ in 0..depth {
                let deeper = expand(s).boxed();
                // 2:1 bias toward the composite cases keeps sampled
                // values interestingly deep without starving leaves.
                s = OneOf {
                    arms: vec![leaf.clone(), deeper.clone(), deeper],
                }
                .boxed();
            }
            s
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                inner: self.inner.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives; the expansion
    /// of `prop_oneof!`.
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A uniform choice among `arms`.
        ///
        /// # Panics
        /// Panics when sampled if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            OneOf { arms }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % width) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end - start) as u64 + 1;
                    if width == 0 {
                        return start + rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % width) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Types with a canonical strategy, usable via [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`: unconstrained values.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs in scope.

    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Uniform choice among heterogeneous strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::new(
                $crate::test_runner::fnv1a(stringify!($name)),
            );
            $(let $arg = $strat;)+
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let s = (0u32..10, crate::collection::vec(any::<bool>(), 4));
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn ranges_and_oneof_stay_in_bounds() {
        let s = prop_oneof![Just(1u32), 5u32..8, 10u32..=12];
        let mut rng = TestRng::new(0);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(
                v == 1 || (5..8).contains(&v) || (10..=12).contains(&v),
                "{v}"
            );
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u32..4)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(1);
        let mut depths = std::collections::HashSet::new();
        for _ in 0..200 {
            depths.insert(depth(&s.sample(&mut rng)));
        }
        assert!(depths.iter().all(|&d| d <= 3));
        assert!(depths.len() > 1, "expected varied depths, got {depths:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself: args bind, asserts pass, early
        /// `return Ok(())` works.
        #[test]
        fn macro_smoke(x in 0u32..100, flip in any::<bool>()) {
            if flip {
                return Ok(());
            }
            prop_assert!(x < 100, "x = {}", x);
            prop_assert_eq!(x, x);
        }
    }
}
