//! Property-based tests of the columnar tuple-storage subsystem: the
//! [`TupleStore`] dedup set against a `HashSet` model, row-id/arena
//! consistency, and [`ColumnIndex`] probes against linear scans — each
//! also under a degenerate all-colliding hash function, so the
//! collision-verify paths carry the same properties as the fast paths.

use fmt_core::structures::index::ColumnIndex;
use fmt_core::structures::store::TupleStore;
use fmt_core::structures::Elem;
use proptest::prelude::*;
use std::collections::HashSet;

/// A degenerate hash step: every element folds to the same hash, so
/// every row of a store (or every key of an index) lands in one bucket
/// and correctness rests entirely on column verification.
fn collide(h: u64, _e: Elem) -> u64 {
    h
}

/// A random tuple stream: an arity in `1..=3` and a flat pool of small
/// element values carved into `len` tuples (small values force plenty
/// of genuine duplicates).
fn arb_tuples() -> impl Strategy<Value = (usize, Vec<Vec<Elem>>)> {
    (
        1usize..=3,
        0usize..=96,
        proptest::collection::vec(0u32..6, 96),
    )
        .prop_map(|(arity, len_seed, pool)| {
            let len = len_seed % (96 / arity + 1);
            let tuples = (0..len)
                .map(|i| pool[i * arity..(i + 1) * arity].to_vec())
                .collect();
            (arity, tuples)
        })
}

fn check_store_against_model(arity: usize, tuples: &[Vec<Elem>], store: &mut TupleStore) {
    let mut model: HashSet<Vec<Elem>> = HashSet::new();
    for t in tuples {
        let fresh = model.insert(t.clone());
        let id = store.push_if_new(t);
        assert_eq!(
            id.is_some(),
            fresh,
            "push_if_new disagrees with model on {t:?}"
        );
        assert!(store.contains(t));
    }
    assert_eq!(store.len(), model.len());
    // Row ids address the arenas: every row reads back as a model tuple.
    for row in 0..store.len32() {
        let t: Vec<Elem> = (0..arity).map(|c| store.value(row, c)).collect();
        assert!(model.contains(&t), "row {row} holds non-model tuple {t:?}");
    }
    // Set equality both ways through the PartialEq bridges.
    assert_eq!(*store, model);
    assert_eq!(model, *store);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `push_if_new`/`contains`/`iter` agree exactly with a `HashSet`
    /// model on random tuple streams.
    #[test]
    fn store_agrees_with_hashset_model(input in arb_tuples()) {
        let (arity, tuples) = input;
        let mut store = TupleStore::new(arity);
        check_store_against_model(arity, &tuples, &mut store);
    }

    /// The same contract holds when every hash collides: the dedup set
    /// degenerates to one bucket and verification does all the work.
    #[test]
    fn store_model_survives_total_collision(input in arb_tuples()) {
        let (arity, tuples) = input;
        let mut store = TupleStore::with_hasher(arity, collide);
        check_store_against_model(arity, &tuples, &mut store);
    }

    /// `ColumnIndex::probe` returns exactly the rows a linear scan
    /// finds, for every key subset and probe value — with the real hash
    /// and with the all-colliding one.
    #[test]
    fn column_index_probe_agrees_with_scan(
        input in arb_tuples(),
        key_bits in 1usize..8,
    ) {
        let (arity, tuples) = input;
        let key: Vec<usize> = (0..arity).filter(|p| key_bits & (1 << p) != 0).collect();
        let store = TupleStore::from_rows(arity, tuples.iter().map(Vec::as_slice));
        for hasher in [None, Some(collide as fn(u64, Elem) -> u64)] {
            let mut idx = match hasher {
                None => ColumnIndex::new(&key),
                Some(h) => ColumnIndex::with_hasher(&key, h),
            };
            idx.extend(&store);
            for probe_tuple in tuples.iter().take(8) {
                let key_vals: Vec<Elem> = key.iter().map(|&p| probe_tuple[p]).collect();
                let mut got: Vec<u32> = idx.probe(&store, &key_vals).collect();
                got.sort_unstable();
                let want: Vec<u32> = (0..store.len32())
                    .filter(|&row| {
                        key.iter()
                            .zip(key_vals.iter())
                            .all(|(&p, &v)| store.value(row, p) == v)
                    })
                    .collect();
                assert_eq!(got, want, "key {key:?} vals {key_vals:?}");
            }
        }
    }
}
