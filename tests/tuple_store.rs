//! Property-based tests of the columnar tuple-storage subsystem: the
//! [`TupleStore`] dedup set against a `HashSet` model, row-id/arena
//! consistency, and [`ColumnIndex`] probes against linear scans — each
//! also under a degenerate all-colliding hash function, so the
//! collision-verify paths carry the same properties as the fast paths.

use fmt_core::structures::index::ColumnIndex;
use fmt_core::structures::store::TupleStore;
use fmt_core::structures::Elem;
use proptest::prelude::*;
use std::collections::HashSet;

/// A degenerate hash step: every element folds to the same hash, so
/// every row of a store (or every key of an index) lands in one bucket
/// and correctness rests entirely on column verification.
fn collide(h: u64, _e: Elem) -> u64 {
    h
}

/// A random tuple stream: an arity in `1..=3` and a flat pool of small
/// element values carved into `len` tuples (small values force plenty
/// of genuine duplicates).
fn arb_tuples() -> impl Strategy<Value = (usize, Vec<Vec<Elem>>)> {
    (
        1usize..=3,
        0usize..=96,
        proptest::collection::vec(0u32..6, 96),
    )
        .prop_map(|(arity, len_seed, pool)| {
            let len = len_seed % (96 / arity + 1);
            let tuples = (0..len)
                .map(|i| pool[i * arity..(i + 1) * arity].to_vec())
                .collect();
            (arity, tuples)
        })
}

fn check_store_against_model(arity: usize, tuples: &[Vec<Elem>], store: &mut TupleStore) {
    let mut model: HashSet<Vec<Elem>> = HashSet::new();
    for t in tuples {
        let fresh = model.insert(t.clone());
        let id = store.push_if_new(t);
        assert_eq!(
            id.is_some(),
            fresh,
            "push_if_new disagrees with model on {t:?}"
        );
        assert!(store.contains(t));
    }
    assert_eq!(store.len(), model.len());
    // Row ids address the arenas: every row reads back as a model tuple.
    for row in 0..store.len32() {
        let t: Vec<Elem> = (0..arity).map(|c| store.value(row, c)).collect();
        assert!(model.contains(&t), "row {row} holds non-model tuple {t:?}");
    }
    // Set equality both ways through the PartialEq bridges.
    assert_eq!(*store, model);
    assert_eq!(model, *store);
}

/// Drives an insert/remove stream against a `HashSet` model, checking
/// the logical-deletion contract after every op and the
/// revival/compaction contract at the end.
fn check_removals_against_model(arity: usize, ops: &[(bool, Vec<Elem>)], store: &mut TupleStore) {
    let mut model: HashSet<Vec<Elem>> = HashSet::new();
    let mut id_of: std::collections::HashMap<Vec<Elem>, u32> = std::collections::HashMap::new();
    for (insert, t) in ops {
        if *insert {
            let fresh = model.insert(t.clone());
            let id = store.push_if_new(t);
            assert_eq!(id.is_some(), fresh, "push_if_new vs model on {t:?}");
            if let Some(id) = id {
                // Re-inserting a removed tuple revives its original
                // row id; a genuinely new tuple gets a fresh row.
                match id_of.get(t) {
                    Some(&old) => assert_eq!(id, old, "revival must return the old row id"),
                    None => assert_eq!(id, store.rows32() - 1),
                }
                id_of.insert(t.clone(), id);
            }
        } else {
            let present = model.remove(t);
            let removed = store.remove(t);
            assert_eq!(removed.is_some(), present, "remove vs model on {t:?}");
            if let Some(id) = removed {
                assert_eq!(id, id_of[t], "remove reports the tuple's row id");
                assert!(!store.is_live(id));
            }
        }
        assert_eq!(store.contains(t), model.contains(t));
        assert_eq!(store.len(), model.len());
    }
    // Live iteration, equality bridges, and per-row liveness all agree
    // with the model.
    let live: HashSet<Vec<Elem>> = store.iter().collect();
    assert_eq!(live, model);
    assert_eq!(*store, model);
    assert_eq!(model, *store);
    let live_rows = (0..store.rows32()).filter(|&r| store.is_live(r)).count();
    assert_eq!(live_rows, model.len());
    assert_eq!(store.tombstones(), store.rows32() as usize - model.len());

    // Compaction drops every tombstone, keeps the live set, and the
    // remap sends live rows to their new ids and dead rows to MAX.
    let old_rows = store.rows32();
    let old_tuples: Vec<(bool, Vec<Elem>)> = (0..old_rows)
        .map(|r| {
            let t: Vec<Elem> = (0..arity).map(|c| store.value(r, c)).collect();
            (store.is_live(r), t)
        })
        .collect();
    let remap = store.compact();
    assert_eq!(remap.len(), old_rows as usize);
    assert_eq!(store.tombstones(), 0);
    assert_eq!(store.len(), model.len());
    assert_eq!(store.rows32() as usize, model.len());
    for (old, (was_live, t)) in old_tuples.iter().enumerate() {
        if *was_live {
            let new = remap[old];
            assert_ne!(new, u32::MAX, "live row lost by compaction");
            let got: Vec<Elem> = (0..arity).map(|c| store.value(new, c)).collect();
            assert_eq!(got, *t, "remap moved row {old} to the wrong tuple");
        } else {
            assert_eq!(remap[old], u32::MAX, "dead row survived compaction");
        }
    }
    assert_eq!(*store, model);
    // The rebuilt dedup table still deduplicates: nothing in the model
    // can be pushed again.
    for t in &model {
        assert!(store.push_if_new(t).is_none());
    }
}

/// An insert/remove op stream over a shared small-value pool: inserts
/// and removes of overlapping tuples, so streams revive rows, remove
/// absent tuples, and double-remove.
fn arb_update_ops() -> impl Strategy<Value = (usize, Vec<(bool, Vec<Elem>)>)> {
    (arb_tuples(), proptest::collection::vec(any::<bool>(), 96)).prop_map(
        |((arity, tuples), bits)| {
            let ops = tuples
                .into_iter()
                .zip(bits)
                .map(|(t, insert)| (insert, t))
                .collect();
            (arity, ops)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `push_if_new`/`contains`/`iter` agree exactly with a `HashSet`
    /// model on random tuple streams.
    #[test]
    fn store_agrees_with_hashset_model(input in arb_tuples()) {
        let (arity, tuples) = input;
        let mut store = TupleStore::new(arity);
        check_store_against_model(arity, &tuples, &mut store);
    }

    /// The same contract holds when every hash collides: the dedup set
    /// degenerates to one bucket and verification does all the work.
    #[test]
    fn store_model_survives_total_collision(input in arb_tuples()) {
        let (arity, tuples) = input;
        let mut store = TupleStore::with_hasher(arity, collide);
        check_store_against_model(arity, &tuples, &mut store);
    }

    /// Logical deletion agrees with the `HashSet` model: removal,
    /// revival of the original row id, tombstone counting, live
    /// iteration/equality, and compaction's remap.
    #[test]
    fn removals_agree_with_hashset_model(input in arb_update_ops()) {
        let (arity, ops) = input;
        let mut store = TupleStore::new(arity);
        check_removals_against_model(arity, &ops, &mut store);
    }

    /// The same deletion contract when every hash collides: removal,
    /// revival, and the compaction rebuild all walk one bucket chain.
    #[test]
    fn removals_survive_total_collision(input in arb_update_ops()) {
        let (arity, ops) = input;
        let mut store = TupleStore::with_hasher(arity, collide);
        check_removals_against_model(arity, &ops, &mut store);
    }

    /// After removals, `ColumnIndex::probe` skips tombstoned rows:
    /// it returns exactly what a liveness-filtered scan returns, with
    /// the real hash and the all-colliding one.
    #[test]
    fn column_index_probe_skips_dead_rows(
        input in arb_update_ops(),
        key_bits in 1usize..8,
    ) {
        let (arity, ops) = input;
        let key: Vec<usize> = (0..arity).filter(|p| key_bits & (1 << p) != 0).collect();
        let mut store = TupleStore::new(arity);
        for (insert, t) in &ops {
            if *insert {
                store.push_if_new(t);
            } else {
                store.remove(t);
            }
        }
        for hasher in [None, Some(collide as fn(u64, Elem) -> u64)] {
            let mut idx = match hasher {
                None => ColumnIndex::new(&key),
                Some(h) => ColumnIndex::with_hasher(&key, h),
            };
            idx.extend(&store);
            for (_, probe_tuple) in ops.iter().take(8) {
                let key_vals: Vec<Elem> = key.iter().map(|&p| probe_tuple[p]).collect();
                let mut got: Vec<u32> = idx.probe(&store, &key_vals).collect();
                got.sort_unstable();
                let want: Vec<u32> = (0..store.rows32())
                    .filter(|&row| {
                        store.is_live(row)
                            && key
                                .iter()
                                .zip(key_vals.iter())
                                .all(|(&p, &v)| store.value(row, p) == v)
                    })
                    .collect();
                assert_eq!(got, want, "key {key:?} vals {key_vals:?}");
            }
        }
    }

    /// `ColumnIndex::probe` returns exactly the rows a linear scan
    /// finds, for every key subset and probe value — with the real hash
    /// and with the all-colliding one.
    #[test]
    fn column_index_probe_agrees_with_scan(
        input in arb_tuples(),
        key_bits in 1usize..8,
    ) {
        let (arity, tuples) = input;
        let key: Vec<usize> = (0..arity).filter(|p| key_bits & (1 << p) != 0).collect();
        let store = TupleStore::from_rows(arity, tuples.iter().map(Vec::as_slice));
        for hasher in [None, Some(collide as fn(u64, Elem) -> u64)] {
            let mut idx = match hasher {
                None => ColumnIndex::new(&key),
                Some(h) => ColumnIndex::with_hasher(&key, h),
            };
            idx.extend(&store);
            for probe_tuple in tuples.iter().take(8) {
                let key_vals: Vec<Elem> = key.iter().map(|&p| probe_tuple[p]).collect();
                let mut got: Vec<u32> = idx.probe(&store, &key_vals).collect();
                got.sort_unstable();
                let want: Vec<u32> = (0..store.len32())
                    .filter(|&row| {
                        key.iter()
                            .zip(key_vals.iter())
                            .all(|(&p, &v)| store.value(row, p) == v)
                    })
                    .collect();
                assert_eq!(got, want, "key {key:?} vals {key_vals:?}");
            }
        }
    }
}
