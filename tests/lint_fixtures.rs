//! Drives `fmt-lint` over the fixture files in `tests/lint/`.
//!
//! One trigger fixture per diagnostic code (its exact span is asserted
//! against the source text), plus `clean.*` fixtures, the formula
//! library, the canned Datalog programs, and the conformance corpus —
//! all of which must stay lint-clean.

use fmt_lint::{diag, lint_formula, lint_formula_src, lint_program, lint_program_src, LintConfig};
use fmt_logic::library;
use fmt_queries::datalog::Program;
use fmt_structures::Signature;
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint")
}

fn fixture(name: &str) -> String {
    let p = fixture_dir().join(name);
    std::fs::read_to_string(&p)
        .unwrap_or_else(|e| panic!("{}: {e}", p.display()))
        .trim_end()
        .to_owned()
}

fn cfg_for(code: &str) -> LintConfig {
    LintConfig {
        // F006 only fires when a sentence is expected.
        expect_sentence: code == "F006",
        ..LintConfig::default()
    }
}

fn lint_fixture(code: &str, ext: &str) -> (String, Vec<fmt_lint::Diagnostic>) {
    let sig = Signature::graph();
    let src = fixture(&format!("{code}.{ext}"));
    let cfg = cfg_for(code);
    let diags = if ext == "fo" {
        lint_formula_src(&sig, &src, &cfg)
    } else {
        lint_program_src(&sig, &src, &cfg)
    };
    (src, diags)
}

#[test]
fn every_code_has_a_trigger_fixture_with_a_precise_span() {
    // (code, extension, expected span slice; None skips the slice check
    // for whole-input or spanless diagnostics)
    let expect: &[(&str, &str, Option<&str>)] = &[
        ("F000", "fo", None), // point span at EOF
        ("F001", "fo", Some("x")),
        ("F002", "fo", Some("x")),
        ("F003", "fo", Some("E(x, y) & false")),
        ("F004", "fo", Some("R")),
        ("F005", "fo", None), // spans the whole formula
        ("F006", "fo", None),
        ("D000", "dl", Some("q")),
        ("D001", "dl", Some("y")),
        ("D002", "dl", Some("y")),
        ("D003", "dl", Some("q")),
        ("D004", "dl", Some("p(y) :- e(y, y)")),
        ("D005", "dl", Some("hit")),
        ("D006", "dl", Some("!p(y)")),
        ("D007", "dl", Some("y")),
        ("D008", "dl", Some("!ghost(x)")),
        ("D009", "dl", None), // program-level, spanless
        ("D010", "dl", Some("ghost")),
        ("D011", "dl", Some("tc(x, y)")),
    ];
    for (code, ext, slice) in expect {
        let (src, diags) = lint_fixture(code, ext);
        let d = diags
            .iter()
            .find(|d| d.code == *code)
            .unwrap_or_else(|| panic!("{code}: fixture did not trigger, got {diags:?}"));
        if let Some(expected) = slice {
            let span = d
                .span
                .unwrap_or_else(|| panic!("{code}: diagnostic has no span"));
            assert_eq!(span.slice(&src), *expected, "{code}: wrong span {span:?}");
        }
    }
}

#[test]
fn trigger_fixtures_report_nothing_else_spurious() {
    // Each fixture is minimal: its own code is the only diagnostic.
    for (code, ext) in [
        ("F000", "fo"),
        ("F001", "fo"),
        ("F003", "fo"),
        ("F004", "fo"),
        ("F005", "fo"),
        ("F006", "fo"),
        ("D000", "dl"),
        ("D001", "dl"),
        ("D002", "dl"),
        ("D003", "dl"),
        ("D004", "dl"),
        ("D005", "dl"),
        ("D006", "dl"),
        ("D007", "dl"),
        ("D008", "dl"),
        ("D009", "dl"),
        ("D010", "dl"),
        ("D011", "dl"),
    ] {
        let (_, diags) = lint_fixture(code, ext);
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, [code], "{code}.{ext}");
    }
    // F002's outer binder is also (necessarily) unused, so the shadow
    // fixture reports both.
    let (_, diags) = lint_fixture("F002", "fo");
    let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
    assert_eq!(codes, ["F001", "F002"]);
}

#[test]
fn registry_is_complete() {
    // Every registered code must have (a) a trigger fixture in
    // tests/lint/ and (b) a section in docs/lint.md, so the
    // scripts/check.sh fixture glob can never silently skip a new
    // code — and (c) a long-form --explain entry (non-emptiness is
    // asserted in the fmt-lint unit tests).
    let docs =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("docs/lint.md"))
            .expect("docs/lint.md must exist");
    for (code, summary) in fmt_lint::CODES {
        let has_fixture = ["fo", "dl"]
            .iter()
            .any(|ext| fixture_dir().join(format!("{code}.{ext}")).exists());
        assert!(
            has_fixture,
            "{code} ({summary}) has no tests/lint/{code}.* fixture"
        );
        assert!(
            docs.contains(&format!("### {code}")),
            "{code} ({summary}) has no `### {code}` section in docs/lint.md"
        );
        assert!(
            fmt_lint::explain(code).is_some(),
            "{code} ({summary}) has no --explain entry"
        );
    }
}

#[test]
fn clean_fixtures_are_clean() {
    let sig = Signature::graph();
    let cfg = LintConfig {
        expect_sentence: true,
        ..LintConfig::default()
    };
    let d = lint_formula_src(&sig, &fixture("clean.fo"), &cfg);
    assert!(d.is_empty(), "clean.fo: {d:?}");
    let d = lint_program_src(&sig, &fixture("clean.dl"), &LintConfig::default());
    assert!(d.is_empty(), "clean.dl: {d:?}");
}

#[test]
fn fixture_diagnostics_round_trip_through_json() {
    let sig = Signature::graph();
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let path = entry.unwrap().path();
        let src = std::fs::read_to_string(&path).unwrap();
        let src = src.trim_end();
        let diags = match path.extension().and_then(|e| e.to_str()) {
            Some("fo") => lint_formula_src(&sig, src, &LintConfig::default()),
            Some("dl") => lint_program_src(&sig, src, &LintConfig::default()),
            _ => continue,
        };
        let back = diag::diags_from_json(&diag::diags_to_json(&diags))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(diags, back, "{}", path.display());
    }
}

#[test]
fn formula_library_is_lint_clean() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    // `at_least(1)` is `∃x. true` — a legitimate F001/F003 — so the
    // library sweep starts at the first non-degenerate counters.
    let formulas = vec![
        ("at_least(2)", library::at_least(2)),
        ("at_most(2)", library::at_most(2)),
        ("exactly(2)", library::exactly(2)),
        ("strict_total_order", library::strict_total_order(e)),
        ("symmetric", library::symmetric(e)),
        ("irreflexive", library::irreflexive(e)),
        ("q1_all_pairs_adjacent", library::q1_all_pairs_adjacent(e)),
        (
            "q2_distinguishing_neighbor",
            library::q2_distinguishing_neighbor(e),
        ),
        ("dominating_vertex", library::dominating_vertex(e)),
        ("no_isolated_vertex", library::no_isolated_vertex(e)),
        ("k_clique(3)", library::k_clique(e, 3)),
        ("k_path(3)", library::k_path(e, 3)),
        ("dist_at_most(2)", library::dist_at_most(e, 2)),
    ];
    for (name, f) in formulas {
        let d = lint_formula(&sig, &f, &LintConfig::default());
        assert!(d.is_empty(), "library::{name}: {d:?}");
    }
    for (i, ax) in library::all_extension_axioms(&sig, 2).iter().enumerate() {
        let d = lint_formula(&sig, ax, &LintConfig::default());
        assert!(d.is_empty(), "extension axiom {i}: {d:?}");
    }
}

#[test]
fn canned_programs_are_lint_clean() {
    for (name, p) in [
        ("transitive_closure", Program::transitive_closure()),
        ("same_generation", Program::same_generation()),
    ] {
        let d = lint_program(&p, &LintConfig::default());
        assert!(d.is_empty(), "{name}: {d:?}");
    }
}

#[test]
fn conform_corpus_is_lint_clean() {
    // The regression corpus only stores inputs the toolbox must handle;
    // none of them may be rejected outright by the linter.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut cases = 0usize;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        cases += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let case = fmt_conform::ReproCase::from_text(&text).unwrap();
        let sig = case.signature();
        if let Some(f) = &case.formula {
            let d = lint_formula_src(&sig, f, &LintConfig::default());
            assert!(
                !fmt_lint::has_errors(&d),
                "{}: formula rejected: {d:?}",
                path.display()
            );
        }
        if let Some(p) = case.param("program") {
            // Stratified-oracle mutant cases exist *because* the linter
            // rejects their programs (D006/D007) — that rejection is
            // the behavior under test, not a corpus defect.
            if case.oracle == "stratified" && case.param("mutant") == Some("true") {
                let d = lint_program_src(&sig, p, &LintConfig::default());
                assert!(
                    d.iter().any(|d| d.code == "D006" || d.code == "D007"),
                    "{}: mutant case no longer rejected: {d:?}",
                    path.display()
                );
                continue;
            }
            let d = lint_program_src(&sig, p, &LintConfig::default());
            assert!(
                !fmt_lint::has_errors(&d),
                "{}: program rejected: {d:?}",
                path.display()
            );
        }
    }
    // Today's corpus is all games-orders cases (no formula/program
    // payloads); the sweep still must visit every case so new payloads
    // are covered the moment they land.
    assert!(cases >= 2, "corpus unexpectedly small: {cases} cases");
}
