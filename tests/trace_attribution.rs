//! Cross-thread trace attribution: spans opened inside `fan_out`
//! workers (and the engines built on it) must parent to the span that
//! was open at the fan-out point, and a traced multi-thread run must
//! record exactly the same rule-level work as a single-thread run.
//!
//! The trace journal is process-global, so every test here holds
//! `TRACE_LOCK` for its whole body.

use fmt_core::queries::datalog::Program;
use fmt_core::structures::budget::Budget;
use fmt_core::structures::builders;
use fmt_obs::trace;
use fmt_structures::par::fan_out;
use proptest::prelude::*;
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn field(ev: &trace::TraceEvent, key: &str) -> Option<u64> {
    ev.field(key).and_then(trace::FieldValue::as_u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every span opened inside a `fan_out` worker is a child of the
    /// span that was open at the call site, whatever thread it ran on,
    /// and the per-chunk items add back up to the full work list.
    #[test]
    fn fan_out_reparents_worker_spans(threads in 1usize..5, n_items in 1usize..40) {
        let _g = locked();
        let items: Vec<u64> = (0..n_items as u64).collect();
        trace::start();
        {
            let _root = fmt_obs::trace_span!("root");
            let _ = fan_out(threads, &items, |work| {
                let _s = fmt_obs::trace_span!("chunk", n = work.len());
                work.len()
            });
        }
        let t = trace::stop();
        let root = t
            .events
            .iter()
            .find(|e| e.name == "root")
            .expect("root span recorded");
        let chunks: Vec<_> = t.events.iter().filter(|e| e.name == "chunk").collect();
        prop_assert!(!chunks.is_empty());
        let mut total = 0;
        for c in &chunks {
            prop_assert_eq!(c.parent, root.id, "chunk must parent to root");
            total += field(c, "n").unwrap();
        }
        prop_assert_eq!(total as usize, n_items);
    }
}

/// Runs traced indexed Datalog TC on the 30-path and returns the sorted
/// multiset of `datalog.rule` span work records.
fn rule_multiset(threads: usize) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    let s = builders::directed_path(30);
    let prog = Program::transitive_closure();
    trace::start();
    let out = prog
        .try_eval_seminaive_with(&s, threads, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust");
    let t = trace::stop();
    assert_eq!(out.relation(0).len(), 30 * 29 / 2);
    let mut v: Vec<_> = t
        .events
        .iter()
        .filter(|e| e.name == "datalog.rule")
        .map(|e| {
            (
                field(e, "rule").expect("rule field"),
                field(e, "pos").unwrap_or(u64::MAX),
                field(e, "round").expect("round field"),
                field(e, "tuples").unwrap_or(u64::MAX),
                field(e, "derived").expect("derived field"),
                field(e, "probes").expect("probes field"),
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// A 3-thread traced run records the same rule-application multiset
/// (rule, join position, round, delta tuples, derivations, probes) as
/// a 1-thread run: parallelism moves work across lanes, never changes
/// it. The 30-path keeps every delta under the sharding threshold, so
/// the job lists are identical too.
#[test]
fn parallel_rule_spans_match_serial_multiset() {
    let _g = locked();
    let serial = rule_multiset(1);
    let parallel = rule_multiset(3);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel);
}

/// Budget exhaustion is journaled as a `budget.exhausted` instant with
/// the resource and tick site as fields.
#[test]
fn budget_exhaustion_leaves_an_instant_event() {
    let _g = locked();
    let s = builders::directed_path(12);
    let prog = Program::transitive_closure();
    trace::start();
    let r = prog.try_eval_seminaive_with(&s, 1, &Budget::with_fuel(3));
    let t = trace::stop();
    assert!(r.is_err(), "3 ticks cannot finish TC on a 12-path");
    let ev = t
        .events
        .iter()
        .find(|e| e.name == "budget.exhausted")
        .expect("exhaustion instant journaled");
    assert!(ev.dur_us.is_none(), "instants have no duration");
    assert_eq!(ev.field("resource").and_then(|v| v.as_str()), Some("fuel"));
}

/// Cancellation is likewise journaled, from whichever thread observes
/// it first.
#[test]
fn cancellation_leaves_an_instant_event() {
    let _g = locked();
    let budget = Budget::unlimited();
    trace::start();
    budget.cancel();
    let s = builders::directed_path(8);
    let r = Program::transitive_closure().try_eval_seminaive_with(&s, 1, &budget);
    let t = trace::stop();
    assert!(r.is_err(), "a cancelled budget stops the engine");
    assert!(
        t.events.iter().any(|e| e.name == "budget.cancelled"),
        "cancellation instant journaled"
    );
}
