//! Cross-validation: every engine in the workspace that can answer the
//! same question must give the same answer.
//!
//! naive ⇔ relalg ⇔ circuit ⇔ bounded-degree on sentences; naive ⇔
//! relalg on open queries; game solver ⇔ closed forms ⇔ fundamental
//! theorem (game equivalence ⇔ sentence agreement, checked on a
//! sentence corpus).

use fmt_core::eval::{circuit, naive, relalg};
use fmt_core::games::solver::EfSolver;
use fmt_core::logic::{library, nf, parser::parse_formula, Formula, Query};
use fmt_core::structures::{builders, Signature, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sentence_corpus(sig: &Signature) -> Vec<(String, Formula)> {
    let e = sig.relation("E").unwrap();
    let mut out: Vec<(String, Formula)> = vec![
        ("at_least_3".into(), library::at_least(3)),
        ("exactly_4".into(), library::exactly(4)),
        ("clique_3".into(), library::k_clique(e, 3)),
        ("path_2".into(), library::k_path(e, 2)),
        ("q1".into(), library::q1_all_pairs_adjacent(e)),
        ("q2".into(), library::q2_distinguishing_neighbor(e)),
        ("dominating".into(), library::dominating_vertex(e)),
        ("no_isolated".into(), library::no_isolated_vertex(e)),
        ("symmetric".into(), library::symmetric(e)),
        ("irreflexive".into(), library::irreflexive(e)),
    ];
    for (i, src) in [
        "forall x. exists y. E(x, y)",
        "exists x. forall y. E(y, x) | y = x",
        "forall x y. (E(x, y) <-> E(y, x))",
        "exists x y z. E(x, y) & E(y, z) & !E(x, z)",
        "forall x. (exists y. E(x, y)) -> (exists z. E(z, x))",
    ]
    .iter()
    .enumerate()
    {
        out.push((format!("parsed_{i}"), parse_formula(sig, src).unwrap()));
    }
    out
}

fn structure_suite(seed: u64) -> Vec<Structure> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut suite = vec![
        builders::empty_graph(0),
        builders::empty_graph(1),
        builders::empty_graph(5),
        builders::complete_graph(4),
        builders::directed_path(6),
        builders::undirected_path(6),
        builders::directed_cycle(5),
        builders::undirected_cycle(6),
        builders::full_binary_tree(2),
        builders::grid(3, 3),
        builders::copies(&builders::undirected_cycle(3), 2),
    ];
    for _ in 0..6 {
        suite.push(builders::random_directed_graph(7, 0.35, &mut rng));
    }
    suite
}

#[test]
fn naive_and_relalg_agree_on_sentences() {
    let sig = Signature::graph();
    for (name, f) in sentence_corpus(&sig) {
        for s in structure_suite(1) {
            assert_eq!(
                naive::check_sentence(&s, &f),
                relalg::check_sentence(&s, &f),
                "{name} on n = {}",
                s.size()
            );
        }
    }
}

#[test]
fn circuit_agrees_with_naive() {
    let sig = Signature::graph();
    for (name, f) in sentence_corpus(&sig) {
        for n in [0u32, 1, 4, 6] {
            let (c, layout) = circuit::compile(&sig, &f, n);
            let mut rng = StdRng::seed_from_u64(n as u64 + 7);
            for _ in 0..5 {
                let s = builders::random_directed_graph(n, 0.4, &mut rng);
                assert_eq!(
                    c.eval(&layout.encode(&s)),
                    naive::check_sentence(&s, &f),
                    "{name} at n = {n}"
                );
            }
        }
    }
}

#[test]
fn normal_forms_preserve_semantics() {
    let sig = Signature::graph();
    for (name, f) in sentence_corpus(&sig) {
        let forms = [
            ("nnf", nf::nnf(&f)),
            ("simplified", nf::simplify(&f)),
            ("standardized", nf::standardize_apart(&f)),
        ];
        for s in structure_suite(2) {
            let reference = naive::check_sentence(&s, &f);
            for (fname, g) in &forms {
                assert_eq!(
                    naive::check_sentence(&s, g),
                    reference,
                    "{fname}({name}) on n = {}",
                    s.size()
                );
            }
        }
    }
}

#[test]
fn prenex_preserves_semantics_on_nonempty_domains() {
    let sig = Signature::graph();
    for (name, f) in sentence_corpus(&sig) {
        let p = nf::prenex(&f).to_formula();
        for s in structure_suite(3) {
            if s.size() == 0 {
                continue; // prenexing assumes nonempty domains
            }
            assert_eq!(
                naive::check_sentence(&s, &p),
                naive::check_sentence(&s, &f),
                "prenex({name}) on n = {}",
                s.size()
            );
        }
    }
}

#[test]
fn open_queries_agree() {
    let sig = Signature::graph();
    let queries = [
        "E(x, y) & !E(y, x)",
        "exists z. E(x, z) & E(z, y) & !(z = x) & !(z = y)",
        "forall z. E(x, z) -> E(y, z)",
        "!E(x, x) & exists y. E(x, y)",
    ];
    for src in queries {
        let q = Query::parse(&sig, src).unwrap();
        for s in structure_suite(4) {
            assert_eq!(
                naive::answers(&s, &q),
                relalg::answers(&s, &q),
                "{src} on n = {}",
                s.size()
            );
        }
    }
}

/// The fundamental theorem, sampled: if the duplicator wins the n-round
/// game on (A, B), then A and B agree on every corpus sentence of
/// quantifier rank ≤ n — and whenever a corpus sentence of rank ≤ n
/// separates A and B, the spoiler must win.
#[test]
fn fundamental_theorem_on_corpus() {
    let sig = Signature::graph();
    let corpus = sentence_corpus(&sig);
    let structures = [
        builders::directed_cycle(4),
        builders::directed_cycle(5),
        builders::directed_path(4),
        builders::undirected_cycle(4),
        builders::undirected_cycle(5),
        builders::complete_graph(4),
        builders::empty_graph(4),
    ];
    for (i, a) in structures.iter().enumerate() {
        for b in &structures[i..] {
            for n in 1..=3u32 {
                let equivalent = EfSolver::new(a, b).duplicator_wins(n);
                if equivalent {
                    for (name, f) in &corpus {
                        if f.quantifier_rank() <= n {
                            assert_eq!(
                                naive::check_sentence(a, f),
                                naive::check_sentence(b, f),
                                "{name} (rank {}) separates ≡_{n}-equivalent structures \
                                 of sizes {} and {}",
                                f.quantifier_rank(),
                                a.size(),
                                b.size()
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Orders: the rank-n agreement of L_m and L_k matches truth agreement
/// of rank-≤ n order sentences.
#[test]
fn fundamental_theorem_on_orders() {
    let sig = Signature::order();
    let sentences: Vec<Formula> = vec![
        library::at_least(2),
        library::at_least(3),
        parse_formula(&sig, "exists x. forall y. x = y | x < y").unwrap(), // has min
        parse_formula(&sig, "forall x. exists y. x < y").unwrap(),         // no max
        parse_formula(
            &sig,
            "exists x y. x < y & !(exists z. x < z & z < y)", // adjacent pair
        )
        .unwrap(),
    ];
    for m in 1..=6u32 {
        for k in 1..=6u32 {
            for n in 1..=3u32 {
                let a = builders::linear_order(m);
                let b = builders::linear_order(k);
                if EfSolver::new(&a, &b).duplicator_wins(n) {
                    for f in &sentences {
                        if f.quantifier_rank() <= n {
                            assert_eq!(
                                naive::check_sentence(&a, f),
                                naive::check_sentence(&b, f),
                                "rank-{} sentence separates L_{m} ≡_{n} L_{k}",
                                f.quantifier_rank()
                            );
                        }
                    }
                }
            }
        }
    }
}
