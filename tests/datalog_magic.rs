//! Property tests for the magic-sets rewrite (`fmt_queries::magic`).
//!
//! Two structural invariants that every rewrite must satisfy, checked
//! on random programs and random goals rather than canned examples:
//!
//! * **Magic closure** — the rewritten program is self-contained: every
//!   `magic_*` (demand) predicate the rewrite introduces is defined by
//!   at least one rule and consumed by at least one guard, so no
//!   adorned rule waits on demand that nothing can ever produce.
//! * **Transparency** — an all-free goal rewrites to the original
//!   program verbatim (same IDB table, same rules), which is the static
//!   half of the guarantee that `tests/magic_transparency.rs` checks
//!   dynamically against the golden evaluation counters.

use fmt_core::queries::datalog::{Pred, Program};
use fmt_core::queries::magic::{self, IdbRole};
use fmt_core::structures::{Signature, Structure, StructureBuilder};
use proptest::prelude::*;

fn graph_sig() -> std::sync::Arc<Signature> {
    Signature::graph()
}

/// A random graph with up to 5 vertices.
fn arb_graph() -> impl Strategy<Value = Structure> {
    (0u32..5, proptest::collection::vec(any::<bool>(), 25)).prop_map(|(n, bits)| {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig, n);
        let mut k = 0usize;
        for u in 0..n {
            for v in 0..n {
                if bits[k % bits.len()] {
                    b.add(e, &[u, v]).unwrap();
                }
                k += 1;
            }
        }
        b.build().unwrap()
    })
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// A random atom over `e/2`, `p/2`, or `q/1` with variables from a
/// 4-name pool.
fn arb_atom() -> impl Strategy<Value = String> {
    (0usize..3, 0usize..4, 0usize..4).prop_map(|(pred, a, b)| match pred {
        0 => format!("e({}, {})", VARS[a], VARS[b]),
        1 => format!("p({}, {})", VARS[a], VARS[b]),
        _ => format!("q({})", VARS[a]),
    })
}

/// A random well-formed program: fixed base rules anchor `p/2` and
/// `q/1` (so every body predicate is defined), followed by up to four
/// random — possibly mutually recursive — rules.
fn arb_program() -> impl Strategy<Value = String> {
    let rule = (
        (0usize..2, 0usize..4, 0usize..4),
        (0usize..3, proptest::collection::vec(arb_atom(), 2)),
    )
        .prop_map(|((head, a, b), (nbody, body))| {
            let head = match head {
                0 => format!("p({}, {})", VARS[a], VARS[b]),
                _ => format!("q({})", VARS[a]),
            };
            if nbody == 0 {
                format!("{head}.")
            } else {
                format!("{head} :- {}.", body[..nbody].join(", "))
            }
        });
    (0usize..5, proptest::collection::vec(rule, 4)).prop_map(|(nextra, extra)| {
        let mut src = String::from("p(x, y) :- e(x, y). q(x) :- e(x, x). ");
        for r in &extra[..nextra.min(extra.len())] {
            src.push_str(r);
            src.push(' ');
        }
        src
    })
}

/// A random goal over the anchored IDBs with at least one bound
/// position, rendered in goal syntax (`p(2, gy)?`).
fn arb_bound_goal() -> impl Strategy<Value = String> {
    ((any::<bool>(), 0u32..6), (0u32..6, 0usize..3)).prop_map(|((on_p, c0), (c1, shape))| {
        if on_p {
            match shape {
                0 => format!("p({c0}, gy)?"),
                1 => format!("p(gx, {c1})?"),
                _ => format!("p({c0}, {c1})?"),
            }
        } else {
            format!("q({c0})?")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Magic closure: in the rewritten program of any bound goal, every
    /// demand predicate is both produced (has a rule — the goal's own
    /// magic predicate is seeded off the appended `__magic_seed` EDB,
    /// which still surfaces as a rule) and consumed (guards some
    /// adorned rule or feeds another demand), and every adorned copy of
    /// an original IDB is defined. No rule mentions an IDB outside the
    /// rewrite's role table.
    #[test]
    fn rewritten_programs_are_magic_closed(src in arb_program(), goal in arb_bound_goal()) {
        let sig = graph_sig();
        let prog = Program::parse(&sig, &src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        let goal = magic::parse_goal(&goal).expect("generated goal parses");
        let mq = magic::rewrite(&prog, &goal)
            .unwrap_or_else(|e| panic!("bound goal on a positive program rewrites: {e}"));
        prop_assert!(!mq.transparent, "a bound goal is never transparent");

        let roles = mq.roles();
        prop_assert_eq!(roles.len(), mq.program.num_idbs());
        let mut defined = vec![false; roles.len()];
        let mut consumed = vec![false; roles.len()];
        for rule in mq.program.rules() {
            let Pred::Idb(h) = rule.head.pred else {
                panic!("rule heads are IDBs");
            };
            defined[h] = true;
            for atom in &rule.body {
                if let Pred::Idb(i) = atom.pred {
                    prop_assert!(i < roles.len(), "body IDB outside the role table");
                    consumed[i] = true;
                }
            }
        }
        consumed[mq.goal_idb] = true; // the query itself consumes the goal's extent
        for (i, role) in roles.iter().enumerate() {
            let (name, _) = mq.program.idb_info(i);
            match role {
                IdbRole::Magic(_) => {
                    prop_assert!(
                        name.starts_with("magic_"),
                        "demand predicate {} is not named magic_*", name
                    );
                    prop_assert!(defined[i], "dangling demand predicate {} has no rules", name);
                    prop_assert!(consumed[i], "demand predicate {} guards nothing", name);
                }
                IdbRole::Adorned(orig) => {
                    prop_assert!(*orig < prog.num_idbs());
                    prop_assert!(defined[i], "adorned predicate {} has no rules", name);
                }
            }
        }
    }

    /// Transparency: an all-free goal rewrites to the original program
    /// — identical IDB table and identical rules, not just equivalent
    /// ones — and the goal maps onto the original predicate.
    #[test]
    fn all_free_goals_rewrite_to_the_original_program(src in arb_program(), on_p in any::<bool>()) {
        let sig = graph_sig();
        let prog = Program::parse(&sig, &src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        let goal = magic::parse_goal(if on_p { "p(gx, gy)?" } else { "q(gx)?" }).unwrap();
        let mq = magic::rewrite(&prog, &goal).expect("all-free goals always rewrite");

        prop_assert!(mq.transparent);
        prop_assert_eq!(mq.goal_idb, mq.orig_idb);
        prop_assert_eq!(mq.program.num_idbs(), prog.num_idbs());
        for i in 0..prog.num_idbs() {
            prop_assert_eq!(mq.program.idb_info(i), prog.idb_info(i));
            prop_assert_eq!(mq.roles()[i], IdbRole::Adorned(i));
        }
        prop_assert_eq!(mq.program.rules(), prog.rules());
    }

    /// Soundness/completeness spot check riding on the same generators:
    /// the rewritten program's goal answers equal the goal-filtered
    /// full materialization (the conformance oracle hunts this
    /// continuously; this pins it into `cargo test`).
    #[test]
    fn rewritten_answers_match_filtered_materialization(
        src in arb_program(),
        goal in arb_bound_goal(),
        s in arb_graph(),
    ) {
        let prog = Program::parse(s.signature(), &src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        let goal = magic::parse_goal(&goal).expect("generated goal parses");
        let mq = magic::rewrite(&prog, &goal).expect("bound goal rewrites");
        let expected = mq.filter(&s, prog.eval_naive(&s).relation(mq.orig_idb));
        let es = mq.prepare(&s);
        let out = mq.program.eval_seminaive(&es);
        prop_assert_eq!(mq.answers(&s, &out), expected);
    }
}
