//! Seeded regression test for the budget fault-injection plumbing: an
//! injected panic inside the budgeted engine runs must be *caught* by
//! the `budget-fault` oracle, *shrunk*, *written* to a corpus
//! directory, and the written case must replay — reproducing while the
//! fault is armed, clean once it is cured.
//!
//! This test owns the [`fmt_conform::oracle::INJECT_PANIC_ENV`]
//! process environment variable for its whole body; keep this file to a
//! single test so no concurrently running test observes the armed
//! fault.

use fmt_conform::oracle::INJECT_PANIC_ENV;
use fmt_conform::{ReproCase, RunConfig, RunError};
use std::path::PathBuf;

fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fmt-{tag}-{}", std::process::id()))
}

#[test]
fn injected_panic_is_caught_shrunk_written_and_replayable() {
    let corpus = scratch_path("budget-fault-corpus");
    let _ = std::fs::remove_dir_all(&corpus);
    std::env::set_var(INJECT_PANIC_ENV, "1");

    // With the fault armed, every budgeted engine run panics, so the
    // very first hunted case must fail — through catch_unwind, not by
    // taking the harness down.
    let report = fmt_conform::run(&RunConfig {
        seed: 7,
        cases: 2,
        oracle: Some("budget-fault".to_owned()),
        corpus_dir: Some(corpus.clone()),
        ..RunConfig::default()
    })
    .expect("the hunt itself must survive injected engine panics");
    assert!(!report.clean(), "armed fault must be caught as a failure");
    assert_eq!(
        report.written.len(),
        2,
        "every caught failure must be written to the corpus"
    );

    for path in &report.written {
        let text = std::fs::read_to_string(path).unwrap();
        let case = ReproCase::from_text(&text).expect("written cases parse back");
        assert_eq!(case.oracle, "budget-fault");
        assert!(case.note.contains("panicked"), "note: {}", case.note);
        // The shrinker ran: an unconditional fault reproduces on the
        // smallest inputs the guards allow, so the recorded structure
        // and fuel must be minimal.
        let s = case.structure("A").unwrap();
        assert_eq!(s.size(), 0, "unconditional fault must shrink to size 0");
        assert_eq!(case.param_u64("fuel").unwrap(), 1, "fuel must shrink to 1");
        // Still armed: the written case reproduces.
        fmt_conform::runner::replay_text(&text).expect_err("armed fault must reproduce on replay");
    }

    // Cure the fault: the same files now replay clean — exactly what
    // `tests/conform_corpus.rs` asserts for the committed corpus.
    std::env::remove_var(INJECT_PANIC_ENV);
    for path in &report.written {
        let text = std::fs::read_to_string(path).unwrap();
        fmt_conform::runner::replay_text(&text)
            .unwrap_or_else(|e| panic!("{}: cured case must replay clean: {e}", path.display()));
    }
    let _ = std::fs::remove_dir_all(&corpus);

    // Finally, the runner reports corpus-write problems as a structured
    // `RunError::Other` — not a panic, not a silent drop. Point the
    // corpus at a plain file and force a write by re-arming the fault.
    let file_not_dir = scratch_path("not-a-dir");
    std::fs::write(&file_not_dir, b"occupied").unwrap();
    std::env::set_var(INJECT_PANIC_ENV, "1");
    let err = fmt_conform::run(&RunConfig {
        seed: 7,
        cases: 1,
        oracle: Some("budget-fault".to_owned()),
        corpus_dir: Some(file_not_dir.clone()),
        ..RunConfig::default()
    });
    std::env::remove_var(INJECT_PANIC_ENV);
    match err {
        Err(RunError::Other(msg)) => assert!(msg.contains("writing"), "{msg}"),
        other => panic!("expected a corpus-write error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&file_not_dir);
}
