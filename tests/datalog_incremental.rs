//! Property-based tests of the incremental Datalog runtime: random
//! shrinkable update traces replayed through `DatalogRuntime` must
//! agree with from-scratch semi-naive recomputation at every poll, at
//! one and at three worker threads. Failures are minimized with the
//! conformance harness's [`Shrinkable`] machinery before reporting, so
//! a red run prints a near-minimal trace ready to paste into a repro
//! case.

use fmt_conform::gen::{UpdateOp, UpdateTrace};
use fmt_conform::shrink::minimize;
use fmt_core::queries::datalog::Program;
use fmt_core::queries::incremental::DatalogRuntime;
use fmt_core::structures::{Elem, Signature, StructureBuilder};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Programs spanning the shapes the runtime must maintain: linear
/// recursion, a bodiless rule with repeated head variables (never
/// drains), and the conformance anchor mix of binary/unary/nullary
/// IDBs with an unbound head variable.
const PROGRAMS: [&str; 3] = [
    "tc(x, y) :- e(x, y). tc(x, z) :- e(x, y), tc(y, z).",
    "sg(x, x). sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp).",
    "p(x, y) :- e(x, y). q(x) :- e(x, x). hit :- e(x, y). p(x, z) :- p(x, y), p(y, z). q(w) :- hit, e(x, x).",
];

/// From-scratch reference on the trace's current fact set.
fn scratch(prog: &Program, domain: u32, facts: &BTreeSet<(u32, u32)>) -> Vec<Vec<Vec<Elem>>> {
    let e = prog.signature().relation("E").unwrap();
    let mut b = StructureBuilder::new(prog.signature().clone(), domain);
    for &(u, v) in facts {
        b.add(e, &[u, v]).unwrap();
    }
    let out = prog.eval_seminaive(&b.build().unwrap());
    (0..prog.num_idbs())
        .map(|i| {
            let mut rows: Vec<Vec<Elem>> = out.relation(i).iter().collect();
            rows.sort();
            rows
        })
        .collect()
}

/// Replays `trace` at 1 and 3 threads, comparing every poll against
/// scratch; `Some(note)` on the first divergence.
fn divergence(src: &str, trace: &UpdateTrace) -> Option<String> {
    let sig = Signature::graph();
    let prog = Program::parse(&sig, src).expect("test programs parse");
    let e = sig.relation("E").unwrap();
    let mut facts: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut rt1 = DatalogRuntime::new(prog.clone(), trace.domain).expect("negation-free");
    let mut rt3 = DatalogRuntime::new(prog.clone(), trace.domain).expect("negation-free");
    rt3.set_threads(3);
    for (step, op) in trace.ops.iter().enumerate() {
        match *op {
            UpdateOp::Insert(u, v) => {
                facts.insert((u, v));
                rt1.insert(e, &[u, v]);
                rt3.insert(e, &[u, v]);
            }
            UpdateOp::Retract(u, v) => {
                facts.remove(&(u, v));
                rt1.retract(e, &[u, v]);
                rt3.retract(e, &[u, v]);
            }
            UpdateOp::Poll => {
                rt1.poll();
                rt3.poll();
                let want = scratch(&prog, trace.domain, &facts);
                for (threads, rt) in [(1usize, &rt1), (3, &rt3)] {
                    for (i, rows) in want.iter().enumerate() {
                        let mut got: Vec<Vec<Elem>> = rt.query(i).iter().collect();
                        got.sort();
                        if got != *rows {
                            let (name, _) = prog.idb_info(i);
                            return Some(format!(
                                "{threads}-thread runtime diverges on {name} at op {step}"
                            ));
                        }
                    }
                }
            }
        }
    }
    None
}

/// A random trace: domain in `1..=5`, up to 24 ops biased toward
/// insertions, with a final poll appended.
fn arb_trace() -> impl Strategy<Value = UpdateTrace> {
    (
        1u32..=5,
        0usize..=24,
        proptest::collection::vec((0u32..5, 0u32..5, 0u32..10), 24),
    )
        .prop_map(|(domain, len, raw)| {
            let mut ops: Vec<UpdateOp> = raw
                .into_iter()
                .take(len)
                .map(|(u, v, kind)| {
                    let (u, v) = (u % domain, v % domain);
                    match kind {
                        0..=4 => UpdateOp::Insert(u, v),
                        5..=7 => UpdateOp::Retract(u, v),
                        _ => UpdateOp::Poll,
                    }
                })
                .collect();
            ops.push(UpdateOp::Poll);
            UpdateTrace { domain, ops }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Trace equivalence across all three program shapes, shrunk with
    /// the conformance minimizer on failure.
    #[test]
    fn runtime_matches_scratch_at_1_and_3_threads(
        trace in arb_trace(),
        prog_i in 0usize..3,
    ) {
        let src = PROGRAMS[prog_i];
        if let Some(note) = divergence(src, &trace) {
            let (min, _) = minimize(
                trace.clone(),
                &mut |t: &UpdateTrace| divergence(src, t).is_some(),
                2_000,
            );
            let min_note = divergence(src, &min).unwrap_or(note);
            panic!(
                "incremental runtime diverged: {min_note}\n\
                 program: {src}\n\
                 domain: {} trace: {}",
                min.domain,
                min.to_compact()
            );
        }
    }

    /// Retracting every inserted edge must drain the IDBs back to
    /// exactly their empty-EDB extents (empty for TC; `sg(x, x)` and
    /// nothing else for the bodiless-rule program).
    #[test]
    fn retract_everything_drains_idbs(
        pool in proptest::collection::vec((0u32..4, 0u32..4), 16),
        len in 1usize..=16,
        prog_i in 0usize..3,
    ) {
        let edges: Vec<(u32, u32)> = pool.into_iter().take(len).collect();
        let sig = Signature::graph();
        let prog = Program::parse(&sig, PROGRAMS[prog_i]).unwrap();
        let e = sig.relation("E").unwrap();
        let mut rt = DatalogRuntime::new(prog.clone(), 4).expect("negation-free");
        for &(u, v) in &edges {
            rt.insert(e, &[u, v]);
        }
        rt.poll();
        for &(u, v) in &edges {
            rt.retract(e, &[u, v]);
        }
        rt.poll();
        prop_assert!(rt.edb(e).is_empty(), "EDB not drained");
        let want = scratch(&prog, 4, &BTreeSet::new());
        for (i, rows) in want.iter().enumerate() {
            let mut got: Vec<Vec<Elem>> = rt.query(i).iter().collect();
            got.sort();
            prop_assert_eq!(&got, rows, "IDB {} not drained to its empty-EDB extent", i);
        }
    }
}

/// The incremental runtime does not yet maintain stratified negation;
/// it must refuse such programs with a typed, spannable error — never
/// accept them and silently compute wrong extents, never panic.
#[test]
fn negated_programs_are_rejected_with_a_typed_error() {
    let sig = Signature::graph();
    let src = "t(x, y) :- e(x, y). nt(x, y) :- e(x, y), !t(y, x).";
    let prog = Program::parse(&sig, src).unwrap();

    let err = DatalogRuntime::new(prog.clone(), 3).expect_err("negation must be rejected");
    assert_eq!((err.rule, err.atom), (1, 1), "points at the negated atom");
    assert_eq!(err.pred, "t");
    assert!(
        err.to_string().contains("does not support negation"),
        "got: {err}"
    );

    let s = StructureBuilder::new(sig, 3).build().unwrap();
    let err2 = DatalogRuntime::from_structure(prog, &s).expect_err("from_structure too");
    assert_eq!((err2.rule, err2.atom), (1, 1));
}
