//! Integration tests for the extension features: the MSO layer (E17),
//! order-invariance checking (§3.6), and the parallel game solver.

use fmt_core::eval::mso;
use fmt_core::games::parallel::{duplicator_wins_parallel, rank_parallel};
use fmt_core::games::solver::{rank, EfSolver};
use fmt_core::logic::mso::{mso_bipartite, mso_connectivity, mso_reachable, MsoFormula};
use fmt_core::logic::parser::parse_formula;
use fmt_core::queries::graph;
use fmt_core::queries::order_invariant::{self, Invariance};
use fmt_core::structures::{builders, Signature};

/// E17 — MSO defines the queries Corollary 3.2 proves FO cannot.
#[test]
fn e17_mso_defines_non_fo_queries() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let conn = mso_connectivity(e);
    let suite = vec![
        builders::undirected_cycle(7),
        builders::copies(&builders::undirected_cycle(3), 2),
        builders::star(5),
        builders::hypercube(3),
        builders::complete_bipartite(2, 3),
        builders::empty_graph(4),
        builders::empty_graph(1),
        builders::full_binary_tree(2),
    ];
    for s in &suite {
        assert_eq!(
            mso::check_sentence(s, &conn),
            graph::is_connected(s),
            "connectivity on n = {}",
            s.size()
        );
    }
    // Bipartiteness: complete bipartite graphs yes, odd cycles no,
    // hypercubes yes.
    let bip = mso_bipartite(e);
    assert!(mso::check_sentence(
        &builders::complete_bipartite(3, 3),
        &bip
    ));
    assert!(mso::check_sentence(&builders::hypercube(3), &bip));
    assert!(!mso::check_sentence(&builders::undirected_cycle(7), &bip));
    assert!(!mso::check_sentence(&builders::complete_graph(3), &bip));
}

/// E17 — MSO separates the Hanf pair that blinds low-rank FO.
#[test]
fn e17_mso_separates_the_hanf_pair() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let m = 4u32;
    let two = builders::copies(&builders::undirected_cycle(m), 2);
    let one = builders::undirected_cycle(2 * m);
    // FO blind at rank 2 (m > 2r+1 for r = 1 ⇒ ≡-equivalence at low
    // rank; here just check the game value).
    assert!(EfSolver::new(&two, &one).duplicator_wins(2));
    // MSO separates.
    let conn = mso_connectivity(e);
    assert!(!mso::check_sentence(&two, &conn));
    assert!(mso::check_sentence(&one, &conn));
}

/// MSO reachability is exactly BFS reachability.
#[test]
fn mso_reachability_is_bfs() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let reach = mso_reachable(e);
    let s = builders::star(3)
        .disjoint_union(&builders::undirected_path(2))
        .unwrap();
    // Components: {0,1,2,3} (star) and {4,5} (edge).
    for x in 0..6u32 {
        for y in 0..6u32 {
            let expected = (x <= 3) == (y <= 3);
            assert_eq!(
                mso::check_with_binding(&s, &reach, &[x, y]),
                expected,
                "reach({x},{y})"
            );
        }
    }
}

/// Embedded FO agrees with the FO evaluators inside MSO.
#[test]
fn mso_fo_embedding() {
    let sig = Signature::graph();
    let fo = parse_formula(&sig, "forall x. exists y. E(x, y) | E(y, x)").unwrap();
    let mso_f = MsoFormula::from_fo(&fo);
    for s in [
        builders::undirected_cycle(5),
        builders::directed_path(4),
        builders::empty_graph(3),
    ] {
        assert_eq!(
            mso::check_sentence(&s, &mso_f),
            fmt_core::eval::naive::check_sentence(&s, &fo)
        );
    }
}

/// §3.6 — order-invariance: pure-σ sentences invariant, order-peeking
/// sentences dependent, cardinality-via-order invariant.
#[test]
fn order_invariance_triptych() {
    let sig = Signature::graph();
    let ordered = order_invariant::with_order(&sig);
    let s = builders::directed_path(4);

    // (a) Pure σ: invariant, value = plain evaluation.
    let pure = parse_formula(&ordered, "exists x. forall y. !E(y, x)").unwrap();
    assert!(matches!(
        order_invariant::invariant_value(&s, &ordered, &pure),
        Invariance::Invariant(true)
    ));

    // (b) Uses < but order-invariantly ("≥ 3 elements").
    let card = parse_formula(&ordered, "exists x y z. x < y & y < z").unwrap();
    assert_eq!(
        order_invariant::invariant_value(&s, &ordered, &card),
        Invariance::Invariant(true)
    );
    assert_eq!(
        order_invariant::invariant_value(&builders::empty_graph(2), &ordered, &card),
        Invariance::Invariant(false)
    );

    // (c) Genuinely order-dependent, with a re-checkable witness pair.
    let dep = parse_formula(&ordered, "exists x. (!(exists z. z < x)) & E(x, x)").unwrap();
    let loopy = {
        use fmt_core::structures::StructureBuilder;
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig.clone(), 3);
        b.add(e, &[1, 1]).unwrap();
        b.build().unwrap()
    };
    match order_invariant::invariant_value(&loopy, &ordered, &dep) {
        Invariance::Dependent {
            true_under,
            false_under,
        } => {
            // The minimum is the loop vertex under the true ranking only.
            assert_eq!(true_under[0], 1);
            assert_ne!(false_under[0], 1);
        }
        other => panic!("expected dependence, got {other:?}"),
    }
}

/// The parallel solver is bit-for-bit the serial solver.
#[test]
fn parallel_solver_equivalence() {
    let cases = [
        (builders::linear_order(6), builders::linear_order(8)),
        (builders::hypercube(2), builders::undirected_cycle(4)),
        (
            builders::complete_bipartite(2, 2),
            builders::undirected_cycle(4),
        ),
        (builders::star(4), builders::undirected_path(5)),
    ];
    for (a, b) in &cases {
        for n in 1..=3u32 {
            assert_eq!(
                duplicator_wins_parallel(a, b, n, 4),
                EfSolver::new(a, b).duplicator_wins(n),
                "sizes {} vs {} at n = {n}",
                a.size(),
                b.size()
            );
        }
        assert_eq!(rank_parallel(a, b, 3, 4), rank(a, b, 3));
    }
}

/// K_{2,2} is C_4 in disguise: the solver knows.
#[test]
fn k22_is_c4() {
    let a = builders::complete_bipartite(2, 2);
    let b = builders::undirected_cycle(4);
    assert!(fmt_core::structures::iso::are_isomorphic(&a, &b));
    assert_eq!(rank(&a, &b, 4), 4);
}
