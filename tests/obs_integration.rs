//! Cross-crate tests of the `fmt-obs` instrumentation layer: the
//! counters the engines report must match what the algorithms provably
//! do, not merely be nonzero.
//!
//! The registry is process-global, so every test that enables it holds
//! `OBS_LOCK` for its whole body and resets the registry at the start.

use fmt_core::queries::datalog::Program;
use fmt_core::structures::builders;
use fmt_games::parallel::duplicator_wins_parallel;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn datalog_fixpoint_counts_are_exact() {
    let _g = locked();
    fmt_obs::enable();
    fmt_obs::reset();

    // TC on the directed path 0 → 1 → ⋯ → 5. Semi-naive evaluation
    // seeds Δ₀ with the 5 edges, then each round extends paths by one
    // edge: |Δ| = 5, 4, 3, 2, 1, and a final empty delta stops the
    // loop. That is 6 rounds and 5+4+3+2+1+0 = 15 delta facts.
    let s = builders::directed_path(6);
    let out = Program::transitive_closure().eval_seminaive(&s);
    assert_eq!(out.relation(0).len(), 15); // C(6,2) pairs i < j

    let snap = fmt_obs::snapshot();
    assert_eq!(snap.counter("queries.datalog.rounds"), Some(6));
    assert_eq!(snap.counter("queries.datalog.delta_facts"), Some(15));
    let h = snap
        .histogram("queries.datalog.delta_size")
        .expect("delta sizes recorded");
    assert_eq!(h.count, 6);
    assert_eq!(h.sum, 15);
    assert_eq!(h.max, 5);
}

#[test]
fn indexed_engine_probes_instead_of_scanning() {
    let _g = locked();
    fmt_obs::enable();
    fmt_obs::reset();

    // The counters behind the perf criterion, at test scale: tuple
    // comparisons done by the indexed engine (index probes plus its
    // residual scans) must undercut the written-order scan engine's
    // nested-loop tuple visits by at least 5×, on the same input and
    // with identical output.
    let prog = Program::transitive_closure();
    let s = builders::directed_path(128);

    let scan_out = prog.eval_seminaive_scan(&s);
    let scanned = fmt_obs::snapshot()
        .counter("queries.datalog.scan_tuples")
        .expect("scan engine counts tuples");

    fmt_obs::reset();
    let idx_out = prog.eval_seminaive(&s);
    let snap = fmt_obs::snapshot();
    let probed = snap.counter("queries.index.probes").unwrap_or(0)
        + snap.counter("queries.index.scan_tuples").unwrap_or(0);
    assert!(snap.counter("queries.index.builds").unwrap_or(0) > 0);

    assert_eq!(scan_out.relation(0), idx_out.relation(0));
    assert_eq!(scan_out.iterations, idx_out.iterations);
    assert!(
        probed * 5 <= scanned,
        "indexed engine compared {probed} tuples vs {scanned} scanned"
    );
}

#[test]
fn parallel_solver_counts_every_first_move() {
    let _g = locked();
    fmt_obs::enable();
    fmt_obs::reset();

    // L_8 vs L_8: isomorphic, so no worker ever refutes and all
    // 8 + 8 = 16 first moves are fully explored.
    let a = builders::linear_order(8);
    let b = builders::linear_order(8);
    assert!(duplicator_wins_parallel(&a, &b, 3, 4));

    let snap = fmt_obs::snapshot();
    assert_eq!(snap.counter("games.parallel.first_moves"), Some(16));
    // No worker refuted, so nothing was cancelled (the counter may not
    // even have registered yet — registration is lazy on first use).
    assert_eq!(snap.counter("games.parallel.cancellations").unwrap_or(0), 0);
    // The workers' solvers share the global counters: concurrent
    // increments from 4 threads must not lose updates.
    let expanded = snap
        .counter("games.solver.positions_expanded")
        .expect("solver ran");
    assert!(expanded >= 16, "expanded only {expanded} positions");
}

#[test]
fn disabled_registry_records_nothing() {
    let _g = locked();
    fmt_obs::enable();
    fmt_obs::reset();
    fmt_obs::disable();

    let s = builders::directed_path(4);
    let _ = Program::transitive_closure().eval_seminaive(&s);
    let a = builders::linear_order(3);
    assert!(duplicator_wins_parallel(&a, &a, 2, 2));

    // `reset` zeroes but keeps registrations, so previously used metric
    // names may still appear — every value must be zero, though.
    let snap = fmt_obs::snapshot();
    for row in snap.rows() {
        assert_eq!(
            row[1], "0",
            "disabled registry recorded {}={}",
            row[0], row[1]
        );
    }
    fmt_obs::enable();
}

#[test]
fn snapshot_reset_roundtrip_is_deterministic() {
    let _g = locked();
    fmt_obs::enable();
    fmt_obs::reset();

    let s = builders::directed_path(5);
    let prog = Program::transitive_closure();
    let _ = prog.eval_seminaive(&s);
    let first = fmt_obs::snapshot();

    fmt_obs::reset();
    let zeroed = fmt_obs::snapshot();
    assert!(zeroed.rows().iter().all(|r| r[1] == "0"));

    // The same run after a reset reports the same numbers.
    let _ = prog.eval_seminaive(&s);
    let second = fmt_obs::snapshot();
    assert_eq!(first.rows(), second.rows());
    assert_eq!(first.to_json(), second.to_json());
}

#[test]
fn every_registered_metric_name_satisfies_the_grammar() {
    let _g = locked();
    fmt_obs::enable();
    fmt_obs::reset();

    // Exercise engines across the workspace so their lazily-registered
    // statics all land in the registry before the sweep.
    let s = builders::directed_path(8);
    let _ = Program::transitive_closure().eval_seminaive(&s);
    let _ = Program::transitive_closure().eval_seminaive_scan(&s);
    let a = builders::linear_order(3);
    let b = builders::linear_order(4);
    let _ = duplicator_wins_parallel(&a, &b, 2, 2);
    let _ = fmt_core::games::pebble::pebble_duplicator_wins(&a, &b, 2, 2);
    let _ = fmt_core::games::bijection::bijection_duplicator_wins(&a, &b, 1);
    let sig = fmt_core::structures::Signature::graph();
    let f = fmt_core::logic::parser::parse_formula(&sig, "exists x. E(x, x)").unwrap();
    let _ = fmt_core::eval::relalg::check_sentence(&s, &f);
    let _ = fmt_core::eval::naive::check_sentence(&s, &f);
    let _ = fmt_core::eval::circuit::compile(&sig, &f, 3);
    let mut reg = fmt_core::locality::TypeRegistry::new();
    let _ = fmt_core::locality::TypeCensus::compute(&s, 1, &mut reg);
    let _ = fmt_core::zeroone::mu::mu_exact(&sig, 1, &f);

    let snap = fmt_obs::snapshot();
    let names: Vec<&str> = snap
        .counters
        .iter()
        .map(|(n, _)| n.as_str())
        .chain(snap.histograms.iter().map(|h| h.name.as_str()))
        .collect();
    assert!(
        names.len() >= 10,
        "expected a broad sweep, saw only {names:?}"
    );
    for name in names {
        assert!(
            fmt_obs::valid_metric_name(name),
            "registered metric name {name:?} violates ^[a-z0-9_.]+$"
        );
    }
}
