//! Replays the committed conformance corpus as ordinary regressions.
//!
//! Every `tests/corpus/*.case` file is a self-contained, shrunk
//! counterexample that `fmtk conform` once found against a (since
//! fixed) bug. Replaying it re-runs the recorded oracle on the recorded
//! inputs: a passing replay means the engines agree again; a failing
//! one means the bug has regressed. New cases land here automatically
//! via `fmtk conform --corpus tests/corpus`.

use fmt_conform::runner::{replay_text, run, RunConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_cases_replay_clean() {
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        if let Err(e) = replay_text(&text) {
            panic!("corpus case {} regressed: {e}", path.display());
        }
        replayed += 1;
    }
    assert!(replayed >= 2, "corpus unexpectedly small: {replayed} cases");
}

/// A short fixed-seed hunt stays clean — the in-tree analogue of the
/// `scripts/check.sh` smoke run, kept small enough for `cargo test`.
#[test]
fn fresh_hunt_finds_no_disagreements() {
    let report = run(&RunConfig {
        seed: 42,
        cases: 60,
        ..RunConfig::default()
    })
    .unwrap();
    assert!(
        report.clean(),
        "oracle disagreements: {:?}",
        report.failures
    );
}
