//! Cancellation race tests: flip [`Budget::cancel`] from another thread
//! while the parallel engines are mid-workload, and assert that they
//! (a) return promptly with [`Resource::Cancelled`], (b) leave no
//! poisoned state behind (the same engines solve fresh inputs correctly
//! afterwards), and (c) lose no ticks — the global `budget.ticks`
//! counter equals the handle's own [`Budget::spent`] at the end.
//!
//! The registry is process-global, so every test that touches it holds
//! `OBS_LOCK` for its whole body (same pattern as `obs_integration.rs`).

use fmt_core::queries::datalog::Program;
use fmt_core::structures::budget::{Budget, Resource};
use fmt_core::structures::builders;
use fmt_games::parallel::try_duplicator_wins_parallel;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The cancelling thread flips the flag after `delay`; the caller gets
/// the engine result plus the wall-clock time from cancellation to
/// return.
fn cancel_after<T: Send>(
    budget: &Budget,
    delay: Duration,
    work: impl FnOnce() -> T + Send,
) -> (T, Duration) {
    std::thread::scope(|scope| {
        let worker = scope.spawn(work);
        std::thread::sleep(delay);
        let cancelled_at = Instant::now();
        budget.cancel();
        let result = worker.join().expect("engine must not panic when cancelled");
        (result, cancelled_at.elapsed())
    })
}

#[test]
fn indexed_parallel_datalog_cancels_promptly_and_loses_no_ticks() {
    let _g = locked();
    fmt_obs::enable();
    fmt_obs::reset();

    // tc_path on a long chain: large enough that the engine is still
    // deep in the fixpoint when the flag flips, even in release builds.
    let s = builders::directed_path(512);
    let prog = Program::transitive_closure();
    // Metered (huge fuel) so every tick is counted: the no-lost-ticks
    // check below compares the global counter against `spent()`.
    let budget = Budget::with_fuel(u64::MAX - 1);

    let (result, to_return) = cancel_after(&budget, Duration::from_millis(15), || {
        prog.try_eval_seminaive_with(&s, 4, &budget)
    });
    let e = result
        .expect_err("cancellation must interrupt the fixpoint")
        .into_exhausted();
    assert_eq!(e.resource, Resource::Cancelled);
    assert!(
        to_return < Duration::from_secs(5),
        "cancelled engine took {to_return:?} to return"
    );

    // No lost ticks: every metered tick the workers consumed is visible
    // both in the shared handle and in the process-wide counter.
    let snap = fmt_obs::snapshot();
    assert_eq!(snap.counter("budget.ticks"), Some(budget.spent()));
    assert!(snap.counter("budget.exhausted.cancelled").unwrap_or(0) >= 1);

    // No poisoned state: the same program on the same structure still
    // evaluates to the right fixpoint afterwards.
    let out = prog
        .try_eval_seminaive_with(&s, 4, &Budget::unlimited())
        .expect("fresh unlimited run must complete");
    assert_eq!(out.relation(0).len(), 512 * 511 / 2);
}

#[test]
fn parallel_games_cancel_promptly_from_another_thread() {
    let _g = locked();

    // L_63 vs L_64 at 6 rounds sits exactly at the 2^6 - 1 threshold:
    // the duplicator wins, so there is no early refutation and the
    // solver must explore the whole move tree — far more work than the
    // cancellation delay allows.
    let a = builders::linear_order(63);
    let b = builders::linear_order(64);
    let budget = Budget::unlimited();

    let (result, to_return) = cancel_after(&budget, Duration::from_millis(15), || {
        try_duplicator_wins_parallel(&a, &b, 6, 4, &budget)
    });
    let e = result.expect_err("cancellation must interrupt the solver");
    assert_eq!(e.resource, Resource::Cancelled);
    assert!(
        to_return < Duration::from_secs(5),
        "cancelled solver took {to_return:?} to return"
    );

    // No poisoned state: a fresh small game still solves correctly on
    // both sides of the threshold.
    let small = builders::linear_order(2);
    let big = builders::linear_order(3);
    assert!(
        !try_duplicator_wins_parallel(&small, &big, 2, 4, &Budget::unlimited()).unwrap(),
        "L_2 vs L_3 is separated by 2 rounds"
    );
    assert!(try_duplicator_wins_parallel(&big, &big, 3, 4, &Budget::unlimited()).unwrap());
}
