//! Cross-engine tests of the Datalog evaluator: the naive reference,
//! the indexed/parallel semi-naive engine (at several thread counts),
//! and the written-order scan engine must compute identical fixpoints —
//! on the canned programs and on random programs over random graphs.
//!
//! Also pins the exact `iterations`/`derivations` of the canonical
//! workloads, so a change in join planning or delta handling that
//! silently alters the amount of work (not just the answers) fails
//! loudly.

use fmt_core::queries::datalog::Program;
use fmt_core::structures::{builders, Signature, Structure, StructureBuilder};
use proptest::prelude::*;

fn graph_sig() -> std::sync::Arc<Signature> {
    Signature::graph()
}

/// A random graph with up to 5 vertices.
fn arb_graph() -> impl Strategy<Value = Structure> {
    (0u32..5, proptest::collection::vec(any::<bool>(), 25)).prop_map(|(n, bits)| {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let mut b = StructureBuilder::new(sig, n);
        let mut k = 0usize;
        for u in 0..n {
            for v in 0..n {
                if bits[k % bits.len()] {
                    b.add(e, &[u, v]).unwrap();
                }
                k += 1;
            }
        }
        b.build().unwrap()
    })
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// A random atom over `e/2`, `p/2`, or `q/1` with variables from a
/// 4-name pool.
fn arb_atom() -> impl Strategy<Value = String> {
    (0usize..3, 0usize..4, 0usize..4).prop_map(|(pred, a, b)| match pred {
        0 => format!("e({}, {})", VARS[a], VARS[b]),
        1 => format!("p({}, {})", VARS[a], VARS[b]),
        _ => format!("q({})", VARS[a]),
    })
}

/// A random well-formed program: fixed base rules anchor `p/2` and
/// `q/1` (so every body predicate is defined), followed by up to four
/// random — possibly mutually recursive — rules.
fn arb_program() -> impl Strategy<Value = String> {
    // The vendored proptest's `collection::vec` is fixed-length, so
    // variable-length lists are a fixed pool plus a prefix length.
    let rule = (
        (0usize..2, 0usize..4, 0usize..4),
        (0usize..3, proptest::collection::vec(arb_atom(), 2)),
    )
        .prop_map(|((head, a, b), (nbody, body))| {
            let head = match head {
                0 => format!("p({}, {})", VARS[a], VARS[b]),
                _ => format!("q({})", VARS[a]),
            };
            if nbody == 0 {
                format!("{head}.")
            } else {
                format!("{head} :- {}.", body[..nbody].join(", "))
            }
        });
    (0usize..5, proptest::collection::vec(rule, 4)).prop_map(|(nextra, extra)| {
        let mut src = String::from("p(x, y) :- e(x, y). q(x) :- e(x, x). ");
        for r in &extra[..nextra.min(extra.len())] {
            src.push_str(r);
            src.push(' ');
        }
        src
    })
}

fn assert_same_fixpoint(prog: &Program, s: &Structure) {
    let naive = prog.eval_naive(s);
    let scan = prog.eval_seminaive_scan(s);
    for threads in 1..=3 {
        let indexed = prog.eval_seminaive_with(s, threads);
        for i in 0..prog.num_idbs() {
            assert_eq!(
                naive.relation(i),
                indexed.relation(i),
                "IDB {i}, {threads} threads"
            );
            assert_eq!(scan.relation(i), indexed.relation(i), "IDB {i} vs scan");
        }
        assert_eq!(scan.iterations, indexed.iterations);
        assert_eq!(scan.derivations, indexed.derivations);
        assert_eq!(scan.delta_history, indexed.delta_history);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All engines and thread counts agree on random programs over
    /// random graphs — answers, iterations, derivations, and per-round
    /// delta sizes.
    #[test]
    fn engines_agree_on_random_programs(src in arb_program(), s in arb_graph()) {
        let prog = Program::parse(s.signature(), &src)
            .unwrap_or_else(|e| panic!("generated program must parse: {e}\n{src}"));
        assert_same_fixpoint(&prog, &s);
    }
}

#[test]
fn engines_agree_on_canned_programs() {
    let tc = Program::transitive_closure();
    let sg = Program::same_generation();
    for s in [
        builders::directed_path(9),
        builders::full_binary_tree(4),
        builders::directed_cycle(7),
        builders::grid(3, 4),
        builders::empty_graph(5),
    ] {
        assert_same_fixpoint(&tc, &s);
        assert_same_fixpoint(&sg, &s);
    }
}

/// Adversarial corner cases hunted by `fmtk conform --oracle
/// datalog-engines`, pinned here as ordinary regressions: empty EDBs,
/// size-0 domains, nullary (0-arity) atoms in heads and bodies,
/// variable-headed facts, and self-joins — each against every engine
/// and thread count.
#[test]
fn engines_agree_on_adversarial_inputs() {
    let programs = [
        // Nullary IDB chain: existential trigger, then propagation.
        "hit :- e(x, y). flag :- hit. p(x, y) :- e(x, y), hit.",
        // Nullary fact (paren form) joined with itself.
        "hit(). both :- hit, hit.",
        // Self-joins and a triangle detector over derived relations.
        "p(x, y) :- e(x, y). q(x) :- p(x, x). p(x, z) :- p(x, y), p(y, z), q(x).",
        "q(x) :- e(x, y), e(y, z), e(z, x).",
        // Variable-headed fact (grounds over the whole domain) plus a
        // nullary fact feeding a nullary rule.
        "p(x, x). a. b :- a. q(y) :- p(y, y), b.",
    ];
    let structures = [
        builders::empty_graph(0), // empty domain
        builders::empty_graph(4), // empty EDB, nonempty domain
        builders::directed_cycle(3),
        builders::complete_graph(3),
    ];
    for src in &programs {
        for s in &structures {
            let prog = Program::parse(s.signature(), src)
                .unwrap_or_else(|e| panic!("program must parse: {e}\n{src}"));
            assert_same_fixpoint(&prog, s);
        }
    }
}

#[test]
fn pinned_work_counts() {
    // TC over the directed path 0 → ⋯ → 5: the 5 edges seed Δ, and each
    // round extends every path by one edge — Δ shrinks 5, 4, 3, 2, 1, 0.
    let tc = Program::transitive_closure();
    let out = tc.eval_seminaive(&builders::directed_path(6));
    assert_eq!(out.iterations, 6);
    assert_eq!(out.derivations, 15);
    assert_eq!(out.delta_history, vec![5, 4, 3, 2, 1, 0]);

    // Same-generation over the full binary tree of depth 3 (15 nodes):
    // the diagonal seeds Δ with 15 facts, then each round lifts pairs
    // one level down both branches.
    let sg = Program::same_generation();
    let out = sg.eval_seminaive(&builders::full_binary_tree(3));
    assert_eq!(out.iterations, 5);
    assert_eq!(out.derivations, 99);
    assert_eq!(out.delta_history, vec![15, 14, 24, 32, 0]);

    // TC over the 4×4 grid: longest path has 6 edges, so 7 rounds.
    let out = tc.eval_seminaive(&builders::grid(4, 4));
    assert_eq!(out.iterations, 7);
    assert_eq!(out.derivations, 816);
    assert_eq!(out.delta_history, vec![48, 84, 64, 40, 16, 4, 0]);
}
