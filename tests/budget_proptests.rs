//! Property tests for the budget layer, driven by the same random
//! structure/sentence/program generators the conformance hunter uses.
//!
//! Two families:
//!
//! * **transparency** — running any engine under `Budget::unlimited()`
//!   is bit-identical to the original unbudgeted entry point, for every
//!   engine pair the toolbox exposes;
//! * **determinism** — the same finite fuel on the same single-threaded
//!   workload exhausts at exactly the same tick, twice in a row (the
//!   foundation the fault-injection oracle's double-run check rests on).

use fmt_conform::gen::{self, GenConfig};
use fmt_eval::{naive, relalg};
use fmt_games::solver::{rank, try_rank};
use fmt_queries::datalog::Program;
use fmt_structures::budget::Budget;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unlimited-budget naive and relalg evaluation agree with the
    /// original unbudgeted entry points on arbitrary sentences.
    #[test]
    fn unlimited_budget_is_transparent_for_eval(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::default();
        let s = gen::random_graph(&mut rng, &cfg);
        let f = gen::random_sentence(&mut rng, &cfg);
        let b = Budget::unlimited();
        let plain = naive::check_sentence(&s, &f);
        prop_assert_eq!(naive::check_sentence_budgeted(&s, &f, &b).unwrap(), plain);
        prop_assert_eq!(
            relalg::check_sentence_budgeted(&s, &f, &b).unwrap(),
            relalg::check_sentence(&s, &f)
        );
    }

    /// Unlimited-budget Datalog (all three engines) returns the same
    /// fixpoint as the unbudgeted paths on arbitrary programs.
    #[test]
    fn unlimited_budget_is_transparent_for_datalog(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::default();
        let s = gen::random_graph(&mut rng, &cfg);
        let src = gen::random_datalog_program(&mut rng);
        let Ok(prog) = Program::parse(s.signature(), &src) else {
            return Ok(());
        };
        let b = Budget::unlimited();
        let plain = prog.eval_naive(&s);
        let budgeted = [
            prog.try_eval_naive(&s, &b).unwrap(),
            prog.try_eval_seminaive_scan(&s, &b).unwrap(),
            prog.try_eval_seminaive_with(&s, 2, &b).unwrap(),
        ];
        for out in &budgeted {
            for i in 0..prog.num_idbs() {
                prop_assert_eq!(out.relation(i), plain.relation(i), "IDB {}", i);
            }
        }
    }

    /// Unlimited-budget EF rank equals the unbudgeted rank on random
    /// graph pairs.
    #[test]
    fn unlimited_budget_is_transparent_for_games(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { max_size: 4, ..GenConfig::default() };
        let a = gen::random_graph(&mut rng, &cfg);
        let b = gen::random_graph(&mut rng, &cfg);
        prop_assert_eq!(
            try_rank(&a, &b, 3, &Budget::unlimited()).unwrap(),
            rank(&a, &b, 3)
        );
    }

    /// The same finite fuel on the same single-threaded workload gives
    /// the same outcome — and, on exhaustion, the same `spent` count and
    /// the same tick site — run after run.
    #[test]
    fn finite_fuel_exhausts_deterministically(seed in any::<u64>(), fuel in 1u64..96) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::default();
        let s = gen::random_graph(&mut rng, &cfg);
        let f = gen::random_sentence(&mut rng, &cfg);
        let runs: Vec<_> = (0..2)
            .map(|_| naive::check_sentence_budgeted(&s, &f, &Budget::with_fuel(fuel)))
            .collect();
        match (&runs[0], &runs[1]) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.spent, b.spent);
                prop_assert_eq!(a.at, b.at);
                prop_assert_eq!(a.spent, fuel + 1);
            }
            (a, b) => prop_assert!(false, "nondeterministic outcome: {a:?} vs {b:?}"),
        }
    }

    /// Fuel discovery: measure the total tick count T of a successful
    /// metered run, then re-run with half the fuel — the engine must
    /// exhaust (at tick T/2 + 1), and with fuel T it must complete.
    #[test]
    fn half_fuel_exhausts_where_full_fuel_completes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::default();
        let s = gen::random_graph(&mut rng, &cfg);
        let f = gen::random_sentence(&mut rng, &cfg);
        // A metered budget with ample fuel records the true tick total.
        let probe = Budget::with_fuel(u64::MAX - 1);
        let expected = naive::check_sentence_budgeted(&s, &f, &probe).unwrap();
        let total = probe.spent();
        prop_assert!(total >= 1);
        prop_assert_eq!(
            naive::check_sentence_budgeted(&s, &f, &Budget::with_fuel(total)).unwrap(),
            expected
        );
        if total >= 2 {
            let half = total / 2;
            let e = naive::check_sentence_budgeted(&s, &f, &Budget::with_fuel(half))
                .expect_err("half the fuel cannot complete");
            prop_assert_eq!(e.spent, half + 1);
        }
    }
}
