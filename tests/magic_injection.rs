//! Seeded regression test for the magic oracle's fault-injection
//! plumbing: an injected magic-sets rewrite bug must be *caught* by the
//! `magic` oracle, *shrunk* (structure and fuel to the guards'
//! minimum), *written* to a corpus directory, and the written case must
//! replay — reproducing while the fault is armed, clean once cured.
//!
//! This test owns the [`fmt_conform::oracle::INJECT_MAGIC_ENV`] process
//! environment variable for its whole body; keep this file to a single
//! test so no concurrently running test observes the armed fault.

use fmt_conform::oracle::INJECT_MAGIC_ENV;
use fmt_conform::{ReproCase, RunConfig};
use std::path::PathBuf;

fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fmt-{tag}-{}", std::process::id()))
}

#[test]
fn injected_magic_bug_is_caught_shrunk_written_and_replayable() {
    let corpus = scratch_path("magic-corpus");
    let _ = std::fs::remove_dir_all(&corpus);
    std::env::set_var(INJECT_MAGIC_ENV, "1");

    // With the fault armed every magic check "fails", so each hunted
    // case must be caught and serialized.
    let report = fmt_conform::run(&RunConfig {
        seed: 7,
        cases: 2,
        oracle: Some("magic".to_owned()),
        corpus_dir: Some(corpus.clone()),
        ..RunConfig::default()
    })
    .expect("the hunt itself must survive an injected fault");
    assert!(!report.clean(), "armed fault must be caught as a failure");
    assert_eq!(
        report.written.len(),
        2,
        "every caught failure must be written to the corpus"
    );

    for path in &report.written {
        let text = std::fs::read_to_string(path).unwrap();
        let case = ReproCase::from_text(&text).expect("written cases parse back");
        assert_eq!(case.oracle, "magic");
        assert!(case.note.contains("injected"), "note: {}", case.note);
        assert!(case.param("program").is_some(), "case records its program");
        assert!(case.param("goal").is_some(), "case records its goal");
        // The shrinker ran: an unconditional fault reproduces at the
        // guard minimum, fuel 1.
        assert_eq!(case.param_u64("fuel").unwrap(), 1, "fuel must shrink to 1");
        // Still armed: the written case reproduces.
        fmt_conform::runner::replay_text(&text).expect_err("armed fault must reproduce on replay");
    }

    // Cure the fault: the same files now replay clean — exactly what
    // `tests/conform_corpus.rs` asserts for the committed corpus.
    std::env::remove_var(INJECT_MAGIC_ENV);
    for path in &report.written {
        let text = std::fs::read_to_string(path).unwrap();
        fmt_conform::runner::replay_text(&text)
            .unwrap_or_else(|e| panic!("{}: cured case must replay clean: {e}", path.display()));
    }
    let _ = std::fs::remove_dir_all(&corpus);
}
