//! The experiment suite: one test per experiment of DESIGN.md §5,
//! asserting the paper's claims end to end across crates (fast
//! variants; the examples print the full tables).

use fmt_core::eval::bounded_degree::{BoundedDegreeEvaluator, HanfParameters};
use fmt_core::eval::qbf::{self, Qbf};
use fmt_core::eval::{circuit, naive, relalg};
use fmt_core::games::closed_form;
use fmt_core::games::solver::{rank, EfSolver};
use fmt_core::locality::hanf;
use fmt_core::logic::{library, parser::parse_formula};
use fmt_core::proofs::{
    BndpCertificate, GaifmanCertificate, GameFamilyCertificate, HanfCertificate,
};
use fmt_core::queries::datalog::Program;
use fmt_core::queries::{graph, reductions};
use fmt_core::structures::{builders, Elem, Signature, Structure};
use fmt_core::zeroone;
use std::collections::HashSet;

/// E1 — combined complexity: work is exponential in quantifier rank,
/// polynomial in data size (operation counts of the naive evaluator).
#[test]
fn e1_combined_complexity_shape() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let ops = |k: u32, n: u32| {
        let f = library::k_clique(e, k);
        let s = builders::complete_graph(n);
        let mut ev = naive::NaiveEvaluator::new(&s);
        let mut env = naive::Env::for_formula(&f);
        ev.eval(&f, &mut env);
        ev.ops
    };
    // Fixing n, each +1 in k multiplies work by ≈ n (here clique search
    // succeeds immediately on complete graphs, so probe the failing
    // side with an empty graph via k-path on empty graphs instead).
    let ops_path = |k: u32, n: u32| {
        let f = library::k_path(e, k);
        let s = builders::empty_graph(n);
        let mut ev = naive::NaiveEvaluator::new(&s);
        let mut env = naive::Env::for_formula(&f);
        ev.eval(&f, &mut env);
        ev.ops
    };
    // k-path on an empty graph fails after scanning x0, x1: O(n^2)
    // regardless of k — so use nested ∀ instead for the k-blowup.
    let deep = |k: u32, n: u32| {
        let mut f =
            fmt_core::logic::Formula::atom(e, &[fmt_core::logic::Var(0), fmt_core::logic::Var(0)])
                .not();
        for i in (0..k).rev() {
            f = fmt_core::logic::Formula::forall(fmt_core::logic::Var(i), f);
        }
        // rebind innermost var usage
        let s = builders::empty_graph(n);
        let mut ev = naive::NaiveEvaluator::new(&s);
        let mut env = naive::Env::for_formula(&f);
        ev.eval(&f, &mut env);
        ev.ops
    };
    // Data-polynomial: doubling n with fixed k multiplies work ≈ 2^k.
    let r1 = deep(2, 16) as f64 / deep(2, 8) as f64;
    let r2 = deep(3, 16) as f64 / deep(3, 8) as f64;
    assert!(r1 > 3.0 && r1 < 5.0, "quadratic ratio ≈ 4, got {r1}");
    assert!(r2 > 6.0 && r2 < 10.5, "cubic ratio ≈ 8, got {r2}");
    // Query-exponential: +1 rank multiplies work by ≈ n.
    let q = deep(3, 16) as f64 / deep(2, 16) as f64;
    assert!(
        q > 10.0,
        "rank bump should multiply work by ≈ n = 16, got {q}"
    );
    let _ = (ops, ops_path);
}

/// E2 — AC⁰: circuit depth constant in n, size polynomial; outputs
/// agree with direct evaluation.
#[test]
fn e2_ac0_circuits() {
    let sig = Signature::graph();
    let f = parse_formula(&sig, "forall x. exists y. E(x, y) & !E(y, x)").unwrap();
    let depths: Vec<usize> = [2u32, 5, 9, 17]
        .iter()
        .map(|&n| circuit::compile(&sig, &f, n).0.depth())
        .collect();
    assert!(depths.windows(2).all(|w| w[0] == w[1]), "{depths:?}");
    let sizes: Vec<usize> = [4u32, 8, 16]
        .iter()
        .map(|&n| circuit::compile(&sig, &f, n).0.size())
        .collect();
    // Quadratic growth: ratio ≈ 4 when n doubles.
    assert!(sizes[1] as f64 / (sizes[0] as f64) > 3.0);
    assert!(sizes[2] as f64 / (sizes[1] as f64) > 3.0);
    assert!(sizes[2] as f64 / (sizes[1] as f64) < 5.0);
    // Agreement on a structure suite.
    let (c, layout) = circuit::compile(&sig, &f, 5);
    for s in [
        builders::directed_cycle(5),
        builders::complete_graph(5),
        builders::empty_graph(5),
        builders::directed_path(5),
    ] {
        assert_eq!(c.eval(&layout.encode(&s)), naive::check_sentence(&s, &f));
    }
}

/// E3 — Theorem 3.1: L_m ≡_n L_k iff m = k or both ≥ 2^n − 1, checked
/// by the game solver; the paper's sufficient condition follows.
#[test]
fn e3_theorem_3_1() {
    for m in 1..=9u32 {
        for k in 1..=9u32 {
            for n in 1..=3u32 {
                let a = builders::linear_order(m);
                let b = builders::linear_order(k);
                assert_eq!(
                    EfSolver::new(&a, &b).duplicator_wins(n),
                    closed_form::orders_equivalent(m as u64, k as u64, n),
                    "L_{m} vs L_{k} at {n}"
                );
            }
        }
    }
    // Paper's instance for EVEN: L_{2^n} ≡_n L_{2^n + 1}.
    for n in 1..=4u32 {
        let m = 1u32 << n;
        assert_eq!(
            rank(
                &builders::linear_order(m),
                &builders::linear_order(m + 1),
                n
            ),
            n
        );
    }
}

/// E4 — EVEN over sets: certificate to depth 5.
#[test]
fn e4_even_sets_certificate() {
    let cert = GameFamilyCertificate::build(
        "EVEN(∅)",
        |n| (builders::set(2 * n), builders::set(2 * n + 1)),
        |s| s.size() % 2 == 0,
        5,
    )
    .unwrap();
    assert!(cert.check_with(|s| s.size() % 2 == 0));
}

/// E5 — Corollary 3.2 via the reduction tricks.
#[test]
fn e5_reduction_tricks() {
    assert!(reductions::verify_conn_correspondence(3, 30).is_ok());
    assert!(reductions::verify_acycl_correspondence(3, 30).is_ok());
    let suite = vec![
        builders::undirected_cycle(6),
        builders::copies(&builders::undirected_cycle(3), 3),
        builders::full_binary_tree(3),
        builders::empty_graph(4),
    ];
    assert_eq!(reductions::verify_conn_via_tc(&suite), Ok(4));
}

/// E6 — BNDP violation of transitive closure on successor chains.
#[test]
fn e6_tc_bndp() {
    let family: Vec<Structure> = (4..=11).map(builders::successor_chain).collect();
    let in_rel = family[0].signature().relation("S").unwrap();
    let out_rel = Signature::graph().relation("E").unwrap();
    let cert =
        BndpCertificate::build("TC", family, in_rel, out_rel, graph::transitive_closure).unwrap();
    assert!(cert.check_with(graph::transitive_closure));
    // The paper's numbers: degs(S_n) ⊆ {0,1}, |degs(TC(S_n))| = n.
    for o in &cert.profile {
        assert!(o.input_max_degree <= 1);
        assert_eq!(o.output_spectrum_size as u32, o.input_size);
    }
}

/// E7 — same-generation on full binary trees realizes degrees 2^0..2^d.
#[test]
fn e7_same_generation_bndp() {
    let prog = Program::same_generation();
    for d in 1..=5u32 {
        let s = builders::full_binary_tree(d);
        let out = prog.eval_seminaive(&s);
        let sg = prog.idb("sg").unwrap();
        // Degrees realized: out-degree of a node at level i is 2^i.
        let mut degs: HashSet<usize> = HashSet::new();
        let mut counts = vec![0usize; s.size() as usize];
        for t in out.relation(sg) {
            counts[t[0] as usize] += 1;
        }
        for c in counts {
            degs.insert(c);
        }
        let expected: HashSet<usize> = (0..=d).map(|i| 1usize << i).collect();
        assert_eq!(degs, expected, "depth {d}");
    }
}

/// E8 — Gaifman-locality violation of TC at every radius.
#[test]
fn e8_tc_gaifman() {
    let tc_pairs = |s: &Structure| -> HashSet<Vec<Elem>> {
        let t = graph::transitive_closure(s);
        let e = t.signature().relation("E").unwrap();
        t.rel(e).iter().map(<[u32]>::to_vec).collect()
    };
    let cert =
        GaifmanCertificate::build("TC", 2, |r| builders::directed_path(6 * r + 8), tc_pairs, 3)
            .unwrap();
    assert!(cert.check());
    // The discovered pairs have the paper's (a,b)/(b,a) structure: the
    // in-tuple is ordered along the chain, the out-tuple against it.
    for (_, out, v) in &cert.rows {
        assert!(out.contains(&v.tuple_in));
        assert!(!out.contains(&v.tuple_out));
    }
}

/// E9 — Hanf-locality violations: connectivity (cycles) and tree test.
#[test]
fn e9_hanf_violations() {
    let conn = HanfCertificate::build(
        "connectivity",
        |r| {
            let m = 2 * r + 2;
            (
                builders::copies(&builders::undirected_cycle(m), 2),
                builders::undirected_cycle(2 * m),
            )
        },
        graph::is_connected,
        4,
    )
    .unwrap();
    assert!(conn.check());
    let tree = HanfCertificate::build(
        "tree",
        |r| {
            let m = 2 * r + 2;
            (
                builders::undirected_path(2 * m),
                builders::undirected_path(m)
                    .disjoint_union(&builders::undirected_cycle(m))
                    .unwrap(),
            )
        },
        graph::is_tree,
        3,
    )
    .unwrap();
    assert!(tree.check());
    // The bound m > 2r + 1 is sharp: at m = 2r + 1 the equivalence
    // fails.
    let r = 3u32;
    let m = 2 * r + 1;
    assert!(!hanf::hanf_equivalent(
        &builders::copies(&builders::undirected_cycle(m), 2),
        &builders::undirected_cycle(2 * m),
        r
    ));
}

/// E10 — Theorem 3.9's hierarchy, empirically: every query defeated by
/// Hanf is defeated by Gaifman-style reasoning, and BNDP is the
/// weakest.
#[test]
fn e10_hierarchy_consistency() {
    // TC fails BNDP (weakest) — so by Thm 3.9 it must also fail
    // Gaifman; we verified both independently (E6, E8).
    // Connectivity is Boolean: BNDP/Gaifman don't apply (arity 0), Hanf
    // catches it (E9). Here: a query that *is* FO-definable must pass
    // all checkers on a probe suite.
    let sig = Signature::graph();
    let q = fmt_core::logic::Query::parse(&sig, "exists z. E(x, z) & E(z, y)").unwrap();
    for s in [
        builders::undirected_cycle(10),
        builders::undirected_path(11),
        builders::full_binary_tree(3),
    ] {
        let out: HashSet<Vec<Elem>> = relalg::answers(&s, &q).into_iter().collect();
        // FO-definable ⇒ Gaifman-local at radius qr (here 2 suffices).
        assert!(fmt_core::locality::gaifman_local::is_local_at(
            &s, &out, 2, 2
        ));
    }
}

/// E11 — bounded-degree linear-time evaluation agrees with the
/// reference evaluators across a mixed family.
#[test]
fn e11_bounded_degree_correctness() {
    let sig = Signature::graph();
    let f = parse_formula(
        &sig,
        "forall x. exists y. E(x, y) & (exists z. E(y, z) & !(z = x))",
    )
    .unwrap();
    let params = HanfParameters {
        radius: 2,
        threshold: 8,
    };
    let mut ev = BoundedDegreeEvaluator::with_parameters(sig.clone(), f.clone(), 4, params);
    let mut family: Vec<Structure> = vec![
        builders::undirected_cycle(5),
        builders::undirected_cycle(40),
        builders::undirected_path(17),
        builders::grid(4, 5),
        builders::copies(&builders::undirected_cycle(7), 2),
        builders::empty_graph(6),
    ];
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..3 {
        family.push(builders::random_bounded_degree_graph(20, 3, &mut rng));
    }
    for s in &family {
        assert_eq!(
            ev.evaluate(s),
            naive::check_sentence(s, &f),
            "n = {}",
            s.size()
        );
    }
    assert!(ev.stats.table_hits > 0, "some census reuse expected");
}

/// E12 — Gaifman normal form: basic local sentence vs direct FO.
#[test]
fn e12_basic_local_sentences() {
    let sig = Signature::graph();
    let has_two_neighbors =
        parse_formula(&sig, "x = x & exists y z. !(y = z) & E(x,y) & E(x,z)").unwrap();
    let b = fmt_core::eval::local::BasicLocalSentence::new(2, 1, has_two_neighbors).unwrap();
    // Direct FO: two branch vertices at distance > 2.
    let direct = parse_formula(
        &sig,
        "exists a b. !(a = b) & !(E(a,b) | E(b,a)) \
         & !(exists m. (E(a,m) | E(m,a)) & (E(m,b) | E(b,m))) \
         & (exists y z. !(y = z) & E(a,y) & E(a,z)) \
         & (exists y z. !(y = z) & E(b,y) & E(b,z))",
    )
    .unwrap();
    for s in [
        builders::undirected_cycle(12),
        builders::undirected_cycle(5),
        builders::undirected_path(8),
        builders::full_binary_tree(2),
        builders::empty_graph(5),
    ] {
        assert_eq!(
            b.evaluate(&s),
            relalg::check_sentence(&s, &direct),
            "n = {}",
            s.size()
        );
    }
}

/// E13 — 0-1 law: decided limits match the paper and the sampled
/// trends; EVEN oscillates.
#[test]
fn e13_zero_one_law() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    assert!(!zeroone::decide_mu(
        &sig,
        &library::q1_all_pairs_adjacent(e)
    ));
    assert!(zeroone::decide_mu(
        &sig,
        &library::q2_distinguishing_neighbor(e)
    ));
    // μ_n(Q1) exact at tiny n decreases fast.
    let q1 = library::q1_all_pairs_adjacent(e);
    let m2 = zeroone::mu_exact(&sig, 2, &q1);
    let m3 = zeroone::mu_exact(&sig, 3, &q1);
    let m4 = zeroone::mu_exact(&sig, 4, &q1);
    assert!(m2 > m3 && m3 > m4);
    assert!((m2 - 0.25).abs() < 1e-12);
    // EVEN's "μ_n" is the parity function — no limit.
    assert!(graph::even(&builders::set(4)) != graph::even(&builders::set(5)));
}

/// E14 — extension axioms: probability grows to ≈ 1, witnesses certify.
#[test]
fn e14_extension_axioms() {
    let sig = Signature::graph();
    let p_small = zeroone::extension::extension_axiom_probability(&sig, 8, 0, 50, 3);
    let p_large = zeroone::extension::extension_axiom_probability(&sig, 48, 0, 50, 3);
    assert!(p_large >= p_small);
    assert!(p_large > 0.95, "{p_large}");
    let w = zeroone::extension::find_generic_witness(&sig, 1, 4).unwrap();
    assert!(w.check());
}

/// E15 — PSPACE-hardness: the QBF reduction agrees with the QBF solver.
#[test]
fn e15_qbf_reduction() {
    let v = |i: u32| Qbf::Var(i);
    let cases = vec![
        Qbf::Forall(0, Box::new(Qbf::Or(vec![v(0), v(0).not()]))),
        Qbf::Exists(0, Box::new(Qbf::And(vec![v(0), v(0).not()]))),
        Qbf::Forall(
            0,
            Box::new(Qbf::Exists(
                1,
                Box::new(Qbf::And(vec![
                    Qbf::Or(vec![v(0), v(1)]),
                    Qbf::Or(vec![v(0).not(), v(1).not()]),
                ])),
            )),
        ),
    ];
    for q in cases {
        let (s, f) = qbf::to_model_checking(&q);
        assert_eq!(qbf::solve(&q), naive::check_sentence(&s, &f));
    }
}

/// E16 — solver ablation: every configuration computes the same game
/// values (performance differences are measured in the benches).
#[test]
fn e16_solver_ablation_agreement() {
    use fmt_core::games::solver::SolverConfig;
    let pairs = [
        (builders::linear_order(5), builders::linear_order(7)),
        (builders::undirected_cycle(5), builders::undirected_cycle(6)),
    ];
    for (a, b) in &pairs {
        for n in 1..=3 {
            let reference = EfSolver::new(a, b).duplicator_wins(n);
            for memo in [false, true] {
                for fresh in [false, true] {
                    for prof in [false, true] {
                        let cfg = SolverConfig {
                            memoization: memo,
                            fresh_move_pruning: fresh,
                            profile_ordering: prof,
                        };
                        assert_eq!(
                            EfSolver::with_config(a, b, cfg).duplicator_wins(n),
                            reference
                        );
                    }
                }
            }
        }
    }
}

/// Finite compactness fails (the lecture's Exercise 2.2.3): every λ_k
/// is satisfiable in a finite structure, but their "limit" (enforced by
/// all of them at once) is not — witnessed here by the fact that any
/// fixed finite structure falsifies λ_{n+1}.
#[test]
fn finite_compactness_counterexample() {
    for n in 0..6u32 {
        let s = builders::set(n);
        // s satisfies λ_k exactly for k ≤ n.
        for k in 0..=n {
            assert!(naive::check_sentence(&s, &library::at_least(k)));
        }
        assert!(!naive::check_sentence(&s, &library::at_least(n + 1)));
    }
}

/// Datalog engines agree with the reference TC and with each other.
#[test]
fn datalog_cross_validation() {
    let prog = Program::transitive_closure();
    let tc = prog.idb("tc").unwrap();
    for s in [
        builders::directed_path(8),
        builders::directed_cycle(7),
        builders::full_binary_tree(3),
    ] {
        let a = prog.eval_naive(&s);
        let b = prog.eval_seminaive(&s);
        assert_eq!(a.relation(tc), b.relation(tc));
        let reference = graph::transitive_closure(&s);
        let e = reference.signature().relation("E").unwrap();
        let expected: HashSet<Vec<Elem>> = reference.rel(e).iter().map(<[u32]>::to_vec).collect();
        assert_eq!(a.relation(tc), &expected);
    }
}
