//! Property-based tests over random formulas and random structures.
//!
//! * generator for well-formed random FO formulas over the graph
//!   signature;
//! * naive ⇔ relalg ⇔ circuit agreement on arbitrary inputs;
//! * NNF/simplify preserve semantics on arbitrary formulas;
//! * quantifier-rank bookkeeping laws;
//! * the fundamental theorem attacked with random sentences: a random
//!   sentence of rank ≤ n never separates game-equivalent structures.

use fmt_core::eval::{circuit, naive, relalg};
use fmt_core::games::solver::EfSolver;
use fmt_core::logic::{nf, Formula, Term, Var};
use fmt_core::structures::{Signature, Structure};
use proptest::prelude::*;

fn graph_sig() -> std::sync::Arc<Signature> {
    Signature::graph()
}

/// A random graph structure with up to 6 vertices.
fn arb_graph() -> impl Strategy<Value = Structure> {
    (0u32..6, proptest::collection::vec(any::<bool>(), 36)).prop_map(|(n, bits)| {
        let sig = graph_sig();
        let e = sig.relation("E").unwrap();
        let mut b = fmt_core::structures::StructureBuilder::new(sig, n);
        let mut k = 0usize;
        for u in 0..n {
            for v in 0..n {
                if bits[k % bits.len()] {
                    b.add(e, &[u, v]).unwrap();
                }
                k += 1;
            }
        }
        b.build().unwrap()
    })
}

/// A random formula over the graph signature with variables drawn from
/// `x0..x3`. May have free variables; `close` wraps them universally.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let e = graph_sig().relation("E").unwrap();
    let var = (0u32..4).prop_map(Var);
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (var.clone(), var.clone()).prop_map(move |(x, y)| Formula::Atom {
            rel: e,
            args: vec![Term::Var(x), Term::Var(y)],
        }),
        (var.clone(), var.clone()).prop_map(|(x, y)| Formula::eq_vars(x, y)),
    ];
    leaf.prop_recursive(4, 24, 3, move |inner| {
        let var2 = (0u32..4).prop_map(Var);
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.implies(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.iff(g)),
            (var2.clone(), inner.clone()).prop_map(|(v, f)| Formula::exists(v, f)),
            (var2, inner).prop_map(|(v, f)| Formula::forall(v, f)),
        ]
    })
}

/// Universally closes a formula.
fn close(f: Formula) -> Formula {
    let free: Vec<Var> = f.free_vars().into_iter().collect();
    Formula::forall_many(&free, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The two evaluators agree on arbitrary sentences and structures.
    #[test]
    fn naive_equals_relalg(f in arb_formula(), s in arb_graph()) {
        let sentence = close(f);
        prop_assert_eq!(
            naive::check_sentence(&s, &sentence),
            relalg::check_sentence(&s, &sentence)
        );
    }

    /// The compiled circuit agrees with direct evaluation.
    #[test]
    fn circuit_equals_naive(f in arb_formula(), s in arb_graph()) {
        let sentence = close(f);
        let sig = graph_sig();
        let (c, layout) = circuit::compile(&sig, &sentence, s.size());
        prop_assert_eq!(
            c.eval(&layout.encode(&s)),
            naive::check_sentence(&s, &sentence)
        );
    }

    /// NNF and simplification preserve truth.
    #[test]
    fn nnf_preserves_truth(f in arb_formula(), s in arb_graph()) {
        let sentence = close(f);
        let g = nf::nnf(&sentence);
        prop_assert_eq!(
            naive::check_sentence(&s, &g),
            naive::check_sentence(&s, &sentence)
        );
        let h = nf::simplify(&sentence);
        prop_assert_eq!(
            naive::check_sentence(&s, &h),
            naive::check_sentence(&s, &sentence)
        );
    }

    /// NNF never increases quantifier rank; simplify never increases
    /// node count beyond the original.
    #[test]
    fn normal_form_bookkeeping(f in arb_formula()) {
        prop_assert_eq!(nf::nnf(&f).quantifier_rank(), f.quantifier_rank());
        prop_assert!(nf::simplify(&f).quantifier_rank() <= f.quantifier_rank());
        // standardize_apart preserves rank and free variables.
        let g = nf::standardize_apart(&f);
        prop_assert_eq!(g.quantifier_rank(), f.quantifier_rank());
        prop_assert_eq!(g.free_vars(), f.free_vars());
    }

    /// Parsing the printed form of a *closed* random formula round-trips
    /// semantically.
    #[test]
    fn display_reparse_semantics(f in arb_formula(), s in arb_graph()) {
        let sentence = close(f);
        let sig = graph_sig();
        let printed = format!("{}", sentence.display(&sig));
        let reparsed = fmt_core::logic::parser::parse_formula(&sig, &printed).unwrap();
        prop_assert_eq!(
            naive::check_sentence(&s, &reparsed),
            naive::check_sentence(&s, &sentence),
            "printed: {}", printed
        );
    }

    /// Parsing the printed form of a closed random formula round-trips
    /// *exactly*, not just semantically: the parser's canonical-name
    /// rule (`x<digits>` denotes that variable index) makes it a left
    /// inverse of `Display` on the normalized ASTs the smart
    /// constructors produce. The vendored proptest cannot shrink, so on
    /// failure the counterexample is minimized with fmt-conform's
    /// `Shrinkable` machinery before reporting.
    #[test]
    fn display_reparse_exact(f in arb_formula()) {
        let sentence = close(f);
        let sig = graph_sig();
        let roundtrips = |g: &Formula| {
            let printed = format!("{}", g.display(&sig));
            matches!(
                fmt_core::logic::parser::parse_formula(&sig, &printed),
                Ok(h) if h == *g
            )
        };
        if !roundtrips(&sentence) {
            let (min, _) = fmt_conform::minimize(
                sentence,
                &mut |g: &Formula| g.is_sentence() && !roundtrips(g),
                2_000,
            );
            let printed = format!("{}", min.display(&sig));
            prop_assert!(false, "exact roundtrip failed; shrunk counterexample: {}", printed);
        }
    }

    /// The fundamental theorem, attacked with random sentences: if the
    /// duplicator wins the n-round game, no random sentence of rank ≤ n
    /// separates the structures.
    #[test]
    fn random_sentences_respect_game_equivalence(
        f in arb_formula(),
        a in arb_graph(),
        b in arb_graph(),
    ) {
        let sentence = close(f);
        let n = sentence.quantifier_rank().min(3);
        if n == 0 {
            return Ok(());
        }
        if EfSolver::new(&a, &b).duplicator_wins(n)
            && sentence.quantifier_rank() <= n
        {
            prop_assert_eq!(
                naive::check_sentence(&a, &sentence),
                naive::check_sentence(&b, &sentence),
                "rank-{} sentence separates ≡_{}-equivalent structures",
                sentence.quantifier_rank(), n
            );
        }
    }

    /// Hanf equivalence at radius ≥ diameter implies isomorphism-level
    /// agreement of the census, and census equality is symmetric.
    #[test]
    fn hanf_equivalence_is_symmetric(a in arb_graph(), b in arb_graph(), r in 0u32..3) {
        let ab = fmt_core::locality::hanf::hanf_equivalent(&a, &b, r);
        let ba = fmt_core::locality::hanf::hanf_equivalent(&b, &a, r);
        prop_assert_eq!(ab, ba);
        // Reflexivity.
        prop_assert!(fmt_core::locality::hanf::hanf_equivalent(&a, &a, r));
    }

    /// Isomorphic structures are game-equivalent at any depth (spot
    /// check n ≤ 3) and Hanf-equivalent at any radius.
    #[test]
    fn isomorphism_implies_equivalences(a in arb_graph(), seed in any::<u64>()) {
        let n = a.size() as usize;
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let b = a.relabel(&perm);
        prop_assert!(EfSolver::new(&a, &b).duplicator_wins(3));
        prop_assert!(fmt_core::locality::hanf::hanf_equivalent(&a, &b, 2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Datalog TC equals reference TC on random graphs.
    #[test]
    fn datalog_tc_on_random_graphs(s in arb_graph()) {
        let prog = fmt_core::queries::datalog::Program::transitive_closure();
        let out = prog.eval_seminaive(&s);
        let tc = prog.idb("tc").unwrap();
        let reference = fmt_core::queries::graph::transitive_closure(&s);
        let e = reference.signature().relation("E").unwrap();
        let expected: std::collections::HashSet<Vec<u32>> =
            reference.rel(e).iter().map(<[u32]>::to_vec).collect();
        prop_assert_eq!(out.relation(tc), &expected);
    }

    /// Connectivity-via-TC equals direct connectivity on random graphs.
    #[test]
    fn conn_via_tc_on_random_graphs(s in arb_graph()) {
        prop_assert_eq!(
            fmt_core::queries::reductions::connectivity_via_tc(&s),
            fmt_core::queries::graph::is_connected(&s)
        );
    }

    /// The structure text format round-trips arbitrary graphs.
    #[test]
    fn structure_text_roundtrip(s in arb_graph()) {
        let text = fmt_core::structures::parse::to_text(&s);
        let back = fmt_core::structures::parse::parse_with(s.signature().clone(), &text).unwrap();
        prop_assert_eq!(s, back);
    }
}
