//! The budget acceptance matrix: **every** engine in the toolbox, run
//! under a one-unit fuel budget on a deliberately oversized workload,
//! must return a structured [`Exhausted`] error — never panic, never
//! hang, never a partial answer. The same matrix then re-runs each
//! engine with an unlimited budget (must complete) and a pre-cancelled
//! budget (must report [`Resource::Cancelled`]), so the three budget
//! outcomes are exercised on identical call sites.

use fmt_eval::{circuit, naive, relalg};
use fmt_games::bijection::try_bijection_duplicator_wins;
use fmt_games::parallel::try_duplicator_wins_parallel;
use fmt_games::pebble::try_pebble_duplicator_wins;
use fmt_games::solver::try_rank;
use fmt_logic::parser::parse_formula;
use fmt_queries::datalog::{EvalError, Program};
use fmt_structures::budget::{Budget, BudgetResult, Exhausted, Resource};
use fmt_structures::{builders, Signature};

/// A boxed engine runner driving one engine on an adversarial workload.
type Runner = Box<dyn Fn(&Budget) -> BudgetResult<()>>;

/// One row of the matrix: engine name, the tick labels it may exhaust
/// at (engines that delegate — μ into relalg, parallel games into the
/// serial solver — legitimately surface the inner label), and a runner
/// that drives the engine on an adversarial workload.
struct Row {
    engine: &'static str,
    labels: &'static [&'static str],
    run: Runner,
}

fn row(
    engine: &'static str,
    labels: &'static [&'static str],
    run: impl Fn(&Budget) -> BudgetResult<()> + 'static,
) -> Row {
    Row {
        engine,
        labels,
        run: Box::new(run),
    }
}

const TC: &str = "tc(x,y) :- e(x,y). tc(x,z) :- e(x,y), tc(y,z).";

fn matrix() -> Vec<Row> {
    let sig = Signature::graph();
    let f = parse_formula(&sig, "forall x. exists y. E(x, y)").unwrap();
    let g = builders::directed_cycle(8);
    let prog = Program::parse(g.signature(), TC).unwrap();
    let a = builders::linear_order(6);
    let b = builders::linear_order(7);
    vec![
        row("eval.naive", &["eval.naive"], {
            let (s, f) = (g.clone(), f.clone());
            move |bu| naive::check_sentence_budgeted(&s, &f, bu).map(drop)
        }),
        row("eval.relalg", &["eval.relalg"], {
            let (s, f) = (g.clone(), f.clone());
            move |bu| relalg::check_sentence_budgeted(&s, &f, bu).map(drop)
        }),
        row("eval.circuit", &["eval.circuit"], {
            let (sig, f) = (sig.clone(), f.clone());
            move |bu| circuit::compile_budgeted(&sig, &f, 8, bu).map(drop)
        }),
        row("games.solver", &["games.solver"], {
            let (a, b) = (a.clone(), b.clone());
            move |bu| try_rank(&a, &b, 3, bu).map(drop)
        }),
        row("games.pebble", &["games.pebble"], {
            let (a, b) = (a.clone(), b.clone());
            move |bu| try_pebble_duplicator_wins(&a, &b, 2, 3, bu).map(drop)
        }),
        row("games.bijection", &["games.bijection"], {
            let a = builders::linear_order(5);
            let b = builders::linear_order(5);
            move |bu| try_bijection_duplicator_wins(&a, &b, 3, bu).map(drop)
        }),
        row("games.parallel", &["games.solver"], {
            let (a, b) = (a.clone(), b.clone());
            move |bu| try_duplicator_wins_parallel(&a, &b, 3, 2, bu).map(drop)
        }),
        row("datalog.naive", &["queries.datalog"], {
            let (s, p) = (g.clone(), prog.clone());
            move |bu| {
                p.try_eval_naive(&s, bu)
                    .map_err(EvalError::into_exhausted)
                    .map(drop)
            }
        }),
        row("datalog.scan", &["queries.datalog"], {
            let (s, p) = (g.clone(), prog.clone());
            move |bu| {
                p.try_eval_seminaive_scan(&s, bu)
                    .map_err(EvalError::into_exhausted)
                    .map(drop)
            }
        }),
        row("datalog.indexed", &["queries.datalog"], {
            let (s, p) = (g.clone(), prog.clone());
            move |bu| {
                p.try_eval_seminaive_with(&s, 2, bu)
                    .map_err(EvalError::into_exhausted)
                    .map(drop)
            }
        }),
        row("zeroone.mu", &["zeroone.mu", "eval.relalg"], {
            let sig = sig.clone();
            let f = parse_formula(&sig, "exists x. E(x, x)").unwrap();
            move |bu| fmt_zeroone::mu::try_mu_exact(&sig, 2, &f, bu).map(drop)
        }),
    ]
}

fn exhaustion(r: &Row, budget: &Budget) -> Exhausted {
    match (r.run)(budget) {
        Err(e) => e,
        Ok(()) => panic!("{}: expected exhaustion, engine completed", r.engine),
    }
}

#[test]
fn every_engine_exhausts_cleanly_under_one_fuel() {
    for r in matrix() {
        let e = exhaustion(&r, &Budget::with_fuel(1));
        assert_eq!(e.resource, Resource::Fuel, "{}: {e}", r.engine);
        // Fuel 1 permits exactly one tick: the engine must notice on its
        // *second* tick, proving the hot loop checks the budget rather
        // than finishing the workload and reporting late.
        assert_eq!(e.spent, 2, "{}: {e}", r.engine);
        assert!(
            r.labels.contains(&e.at),
            "{}: exhausted at unexpected site {:?}",
            r.engine,
            e.at
        );
    }
}

#[test]
fn every_engine_completes_under_unlimited_budget() {
    for r in matrix() {
        let budget = Budget::unlimited();
        (r.run)(&budget).unwrap_or_else(|e| panic!("{}: {e}", r.engine));
        assert_eq!(
            budget.spent(),
            0,
            "{}: unlimited budgets must not meter ticks",
            r.engine
        );
    }
}

#[test]
fn every_engine_observes_prior_cancellation() {
    for r in matrix() {
        let budget = Budget::unlimited();
        budget.cancel();
        let e = exhaustion(&r, &budget);
        assert_eq!(e.resource, Resource::Cancelled, "{}: {e}", r.engine);
    }
}

#[test]
fn every_engine_observes_a_zero_deadline() {
    for r in matrix() {
        let budget = Budget::with_timeout(std::time::Duration::ZERO);
        let e = exhaustion(&r, &budget);
        assert_eq!(e.resource, Resource::Deadline, "{}: {e}", r.engine);
    }
}
