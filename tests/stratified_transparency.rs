//! Transparency guarantee for the stratification layer: a
//! negation-free program must evaluate **bit-identically** to the
//! pre-stratification engines. The golden values below (iteration
//! counts, derivation counters, delta histories, relation sizes, and
//! an order-sensitive checksum over every IDB row) were captured on
//! the commit immediately before strata-aware evaluation landed; any
//! drift means the "single stratum ⇒ unchanged behavior" fast path
//! has been broken.

use fmt_conform::gen::random_datalog_program;
use fmt_queries::datalog::{Output, Program};
use fmt_structures::{builders, Signature, Structure};
use rand::{rngs::StdRng, SeedableRng};

/// Order-sensitive checksum over all IDB extents, in relation order
/// and store iteration order — exactly the fold used to capture the
/// golden values.
fn checksum(prog: &Program, out: &Output) -> u64 {
    let mut sum: u64 = 0;
    for i in 0..prog.num_idbs() {
        for row in out.relation(i).iter() {
            for (p, &v) in row.iter().enumerate() {
                sum = sum
                    .wrapping_mul(31)
                    .wrapping_add((p as u64 + 1) * (v as u64 + 7));
            }
        }
    }
    sum
}

struct Golden {
    name: &'static str,
    src: Option<&'static str>, // None ⇒ canned program below
    canned: fn() -> Program,
    structure: fn() -> Structure,
    iterations: usize,
    derivations: u64,
    delta_history: &'static [u64],
    lens: &'static [usize],
    sum: u64,
}

fn no_canned() -> Program {
    unreachable!("parsed from src")
}

const GOLDENS: &[Golden] = &[
    Golden {
        name: "tc/path12",
        src: None,
        canned: Program::transitive_closure,
        structure: || builders::directed_path(12),
        iterations: 12,
        derivations: 66,
        delta_history: &[11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0],
        lens: &[66],
        sum: 7379085459056171046,
    },
    Golden {
        name: "tc/cycle7",
        src: None,
        canned: Program::transitive_closure,
        structure: || builders::directed_cycle(7),
        iterations: 8,
        derivations: 56,
        delta_history: &[7, 7, 7, 7, 7, 7, 7, 0],
        lens: &[49],
        sum: 14254617217907438506,
    },
    Golden {
        name: "sg/tree4",
        src: None,
        canned: Program::same_generation,
        structure: || builders::full_binary_tree(4),
        iterations: 6,
        derivations: 371,
        delta_history: &[31, 30, 56, 96, 128, 0],
        lens: &[341],
        sum: 10366066170673779297,
    },
    Golden {
        name: "evod/path5",
        src: Some("ev(x, x). od(x, y) :- ev(x, z), e(z, y). ev(x, y) :- od(x, z), e(z, y)."),
        canned: no_canned,
        structure: || builders::directed_path(5),
        iterations: 6,
        derivations: 15,
        delta_history: &[5, 4, 3, 2, 1, 0],
        lens: &[9, 6],
        sum: 12777995926804091653,
    },
    Golden {
        name: "nullary/path3",
        src: Some("reach :- e(x, y). both() :- reach."),
        canned: no_canned,
        structure: || builders::directed_path(3),
        iterations: 3,
        derivations: 3,
        delta_history: &[1, 1, 0],
        lens: &[1, 1],
        sum: 0,
    },
];

fn sorted_extents(prog: &Program, out: &Output) -> Vec<Vec<Vec<fmt_structures::Elem>>> {
    (0..prog.num_idbs())
        .map(|i| {
            let mut rows: Vec<_> = out.relation(i).iter().collect();
            rows.sort();
            rows
        })
        .collect()
}

#[test]
fn negation_free_programs_match_pre_stratification_goldens() {
    let sig = Signature::graph();
    for g in GOLDENS {
        let prog = match g.src {
            Some(src) => Program::parse(&sig, src).unwrap(),
            None => (g.canned)(),
        };
        let s = (g.structure)();
        for threads in [1usize, 3] {
            let out = prog.eval_seminaive_with(&s, threads);
            assert_eq!(
                out.iterations, g.iterations,
                "{}@{threads}: iterations",
                g.name
            );
            assert_eq!(
                out.derivations, g.derivations,
                "{}@{threads}: derivations",
                g.name
            );
            assert_eq!(
                out.delta_history, g.delta_history,
                "{}@{threads}: delta history",
                g.name
            );
            let lens: Vec<usize> = (0..prog.num_idbs())
                .map(|i| out.relation(i).len())
                .collect();
            assert_eq!(lens, g.lens, "{}@{threads}: relation sizes", g.name);
            assert_eq!(
                checksum(&prog, &out),
                g.sum,
                "{}@{threads}: row checksum",
                g.name
            );
        }
        // The naive and scan engines must agree with the golden extents
        // too — stratification touched all three evaluation loops.
        let golden = sorted_extents(&prog, &prog.eval_seminaive_with(&s, 1));
        for (engine, out) in [
            ("naive", prog.eval_naive(&s)),
            ("scan", prog.eval_seminaive_scan(&s)),
        ] {
            assert_eq!(
                sorted_extents(&prog, &out),
                golden,
                "{}: {engine} extents diverge",
                g.name
            );
        }
    }
}

/// Seeded sweep: on random negation-free programs the 1- and 3-thread
/// indexed engines must produce identical extents *and* identical
/// instrumentation counters — the strata loop must not perturb either.
#[test]
fn random_negation_free_programs_are_thread_transparent() {
    let sig = Signature::graph();
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    let structures = [
        builders::directed_path(6),
        builders::directed_cycle(5),
        builders::full_binary_tree(3),
    ];
    for case in 0..20 {
        let src = random_datalog_program(&mut rng);
        let prog = Program::parse(&sig, &src).unwrap();
        assert!(!prog.has_negation(), "generator must stay negation-free");
        for s in &structures {
            let a = prog.eval_seminaive_with(s, 1);
            let b = prog.eval_seminaive_with(s, 3);
            assert_eq!(a.iterations, b.iterations, "case {case}: iterations\n{src}");
            assert_eq!(
                a.derivations, b.derivations,
                "case {case}: derivations\n{src}"
            );
            assert_eq!(
                a.delta_history, b.delta_history,
                "case {case}: delta history\n{src}"
            );
            assert_eq!(
                sorted_extents(&prog, &a),
                sorted_extents(&prog, &b),
                "case {case}: extents\n{src}"
            );
        }
    }
}
