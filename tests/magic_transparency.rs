//! Transparency guarantee for the magic-sets layer: an **all-free**
//! goal must evaluate bit-identically to running the program with no
//! goal at all — same extents, same iteration and derivation counters,
//! same delta histories, at 1 and 3 threads. The golden values are the
//! ones `tests/stratified_transparency.rs` pinned before goal-directed
//! evaluation existed; any drift means the identity rewrite (or the
//! rewrite's re-run of the stratification analysis) perturbed the
//! engines.

use fmt_conform::gen::random_datalog_program;
use fmt_queries::datalog::{Output, Program};
use fmt_queries::magic::{self, MagicQuery};
use fmt_structures::{builders, Signature, Structure};
use rand::{rngs::StdRng, SeedableRng};

/// Order-sensitive checksum over all IDB extents — the same fold that
/// captured the stratified-transparency goldens.
fn checksum(prog: &Program, out: &Output) -> u64 {
    let mut sum: u64 = 0;
    for i in 0..prog.num_idbs() {
        for row in out.relation(i).iter() {
            for (p, &v) in row.iter().enumerate() {
                sum = sum
                    .wrapping_mul(31)
                    .wrapping_add((p as u64 + 1) * (v as u64 + 7));
            }
        }
    }
    sum
}

struct Golden {
    name: &'static str,
    src: Option<&'static str>, // None ⇒ canned program below
    canned: fn() -> Program,
    /// All-free goal on the program's first IDB.
    goal: &'static str,
    structure: fn() -> Structure,
    iterations: usize,
    derivations: u64,
    delta_history: &'static [u64],
    lens: &'static [usize],
    sum: u64,
}

fn no_canned() -> Program {
    unreachable!("parsed from src")
}

const GOLDENS: &[Golden] = &[
    Golden {
        name: "tc/path12",
        src: None,
        canned: Program::transitive_closure,
        goal: "tc(gx, gy)?",
        structure: || builders::directed_path(12),
        iterations: 12,
        derivations: 66,
        delta_history: &[11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0],
        lens: &[66],
        sum: 7379085459056171046,
    },
    Golden {
        name: "tc/cycle7",
        src: None,
        canned: Program::transitive_closure,
        goal: "tc(gx, gy)?",
        structure: || builders::directed_cycle(7),
        iterations: 8,
        derivations: 56,
        delta_history: &[7, 7, 7, 7, 7, 7, 7, 0],
        lens: &[49],
        sum: 14254617217907438506,
    },
    Golden {
        name: "sg/tree4",
        src: None,
        canned: Program::same_generation,
        goal: "sg(gx, gy)?",
        structure: || builders::full_binary_tree(4),
        iterations: 6,
        derivations: 371,
        delta_history: &[31, 30, 56, 96, 128, 0],
        lens: &[341],
        sum: 10366066170673779297,
    },
    Golden {
        name: "evod/path5",
        src: Some("ev(x, x). od(x, y) :- ev(x, z), e(z, y). ev(x, y) :- od(x, z), e(z, y)."),
        canned: no_canned,
        goal: "ev(gx, gy)?",
        structure: || builders::directed_path(5),
        iterations: 6,
        derivations: 15,
        delta_history: &[5, 4, 3, 2, 1, 0],
        lens: &[9, 6],
        sum: 12777995926804091653,
    },
    Golden {
        name: "nullary/path3",
        src: Some("reach :- e(x, y). both() :- reach."),
        canned: no_canned,
        goal: "reach?",
        structure: || builders::directed_path(3),
        iterations: 3,
        derivations: 3,
        delta_history: &[1, 1, 0],
        lens: &[1, 1],
        sum: 0,
    },
];

fn sorted_extents(prog: &Program, out: &Output) -> Vec<Vec<Vec<fmt_structures::Elem>>> {
    (0..prog.num_idbs())
        .map(|i| {
            let mut rows: Vec<_> = out.relation(i).iter().collect();
            rows.sort();
            rows
        })
        .collect()
}

fn rewrite_all_free(prog: &Program, goal: &str) -> MagicQuery {
    let goal = magic::parse_goal(goal).expect("golden goal parses");
    let mq = magic::rewrite(prog, &goal).expect("golden goal rewrites");
    assert!(mq.transparent, "an all-free goal must be transparent");
    mq
}

#[test]
fn all_free_goals_match_pre_magic_goldens() {
    let sig = Signature::graph();
    for g in GOLDENS {
        let prog = match g.src {
            Some(src) => Program::parse(&sig, src).unwrap(),
            None => (g.canned)(),
        };
        let mq = rewrite_all_free(&prog, g.goal);
        let s = (g.structure)();
        let es = mq.prepare(&s);
        for threads in [1usize, 3] {
            let out = mq.program.eval_seminaive_with(&es, threads);
            assert_eq!(
                out.iterations, g.iterations,
                "{}@{threads}: iterations",
                g.name
            );
            assert_eq!(
                out.derivations, g.derivations,
                "{}@{threads}: derivations",
                g.name
            );
            assert_eq!(
                out.delta_history, g.delta_history,
                "{}@{threads}: delta history",
                g.name
            );
            let lens: Vec<usize> = (0..mq.program.num_idbs())
                .map(|i| out.relation(i).len())
                .collect();
            assert_eq!(lens, g.lens, "{}@{threads}: relation sizes", g.name);
            assert_eq!(
                checksum(&mq.program, &out),
                g.sum,
                "{}@{threads}: row checksum",
                g.name
            );
            // And the goal's answer set is the full goal extent, sorted.
            let mut full: Vec<_> = out.relation(mq.goal_idb).iter().collect();
            full.sort();
            assert_eq!(mq.answers(&s, &out), full, "{}@{threads}: answers", g.name);
        }
        // The naive and scan engines see the same identity rewrite.
        let golden = sorted_extents(&prog, &prog.eval_seminaive_with(&s, 1));
        for (engine, out) in [
            ("naive", mq.program.eval_naive(&es)),
            ("scan", mq.program.eval_seminaive_scan(&es)),
        ] {
            assert_eq!(
                sorted_extents(&mq.program, &out),
                golden,
                "{}: {engine} extents diverge through the rewrite",
                g.name
            );
        }
    }
}

/// Seeded sweep: on random negation-free programs, evaluating through
/// an all-free rewrite of the first IDB must reproduce the direct
/// evaluation's extents *and* instrumentation counters at 1 and 3
/// threads — the rewrite layer must not perturb anything it forwards.
#[test]
fn random_programs_are_transparent_through_all_free_rewrites() {
    let sig = Signature::graph();
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    let structures = [
        builders::directed_path(6),
        builders::directed_cycle(5),
        builders::full_binary_tree(3),
    ];
    for case in 0..20 {
        let src = random_datalog_program(&mut rng);
        let prog = Program::parse(&sig, &src).unwrap();
        let (name, arity) = prog.idb_info(0);
        let vars = ["gx", "gy", "gz", "gw"];
        let goal = if arity == 0 {
            format!("{name}?")
        } else {
            format!("{name}({})?", vars[..arity].join(", "))
        };
        let mq = rewrite_all_free(&prog, &goal);
        for s in &structures {
            let es = mq.prepare(s);
            for threads in [1usize, 3] {
                let direct = prog.eval_seminaive_with(s, threads);
                let through = mq.program.eval_seminaive_with(&es, threads);
                assert_eq!(
                    direct.iterations, through.iterations,
                    "case {case}@{threads}: iterations\n{src}"
                );
                assert_eq!(
                    direct.derivations, through.derivations,
                    "case {case}@{threads}: derivations\n{src}"
                );
                assert_eq!(
                    direct.delta_history, through.delta_history,
                    "case {case}@{threads}: delta history\n{src}"
                );
                assert_eq!(
                    sorted_extents(&prog, &direct),
                    sorted_extents(&mq.program, &through),
                    "case {case}@{threads}: extents\n{src}"
                );
            }
        }
    }
}
