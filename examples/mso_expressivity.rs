//! Experiment E17: the MSO counterpoint — what FO cannot define,
//! monadic second-order logic can.
//!
//! Corollary 3.2 of the survey shows connectivity, acyclicity and
//! transitive closure are **not FO-definable**; the complexity section
//! notes that the PSPACE bound covers "FO (and monadic second-order
//! logic MSO)". This example completes the picture: the MSO sentences
//! for connectivity, reachability and bipartiteness are evaluated
//! (by exhaustive set quantification — exponential, as it must be) and
//! cross-checked against the reference graph algorithms, including on
//! the very structure pairs where FO provably fails.
//!
//! Run with: `cargo run --release --example mso_expressivity`

use fmt_core::eval::mso;
use fmt_core::logic::mso::{mso_bipartite, mso_connectivity, mso_reachable};
use fmt_core::queries::graph;
use fmt_core::report;
use fmt_core::structures::{builders, Signature};

fn main() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();

    // -----------------------------------------------------------------
    // Connectivity: MSO succeeds exactly where FO fails.
    // -----------------------------------------------------------------
    print!("{}", report::section("E17 · connectivity is MSO-definable"));
    println!("MSO sentence: ∀X [(∃x X(x)) ∧ closed-under-E(X) → ∀z X(z)]\n");
    let conn = mso_connectivity(e);
    let suite = [
        ("C_8", builders::undirected_cycle(8)),
        (
            "C_4 ⊎ C_4",
            builders::copies(&builders::undirected_cycle(4), 2),
        ),
        ("path_7", builders::undirected_path(7)),
        ("tree d=2", builders::full_binary_tree(2)),
        ("empty_4", builders::empty_graph(4)),
        ("K_5", builders::complete_graph(5)),
    ];
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|(name, s)| {
            let (mso_val, stats) = mso::check_sentence_with_stats(s, &conn);
            let reference = graph::is_connected(s);
            assert_eq!(mso_val, reference);
            vec![
                (*name).to_owned(),
                report::mark(mso_val).to_owned(),
                report::mark(reference).to_owned(),
                stats.set_assignments.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["graph", "MSO", "reference BFS", "set assignments tried"],
            &rows
        )
    );
    println!("→ MSO decides connectivity correctly everywhere — including on the");
    println!("  Hanf pair C_m ⊎ C_m vs C_2m where every low-rank FO sentence is blind.");
    println!("  The price is the exponential set quantifier (last column).");

    // -----------------------------------------------------------------
    // The FO-blind pair, revisited.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("The paper's Hanf pair, seen by FO vs MSO")
    );
    let m = 5u32;
    let two = builders::copies(&builders::undirected_cycle(m), 2);
    let one = builders::undirected_cycle(2 * m);
    let fo_rank = fmt_core::games::solver::rank(&two, &one, 3);
    println!("C_{m} ⊎ C_{m} vs C_{}:", 2 * m);
    println!("  FO : duplicator survives {fo_rank} game rounds — rank-{fo_rank} FO sentences can't tell them apart");
    println!(
        "  MSO: connectivity sentence answers {} vs {} — separated\n",
        mso::check_sentence(&two, &conn),
        mso::check_sentence(&one, &conn)
    );

    // -----------------------------------------------------------------
    // Bipartiteness and reachability.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("More MSO-definable queries: 2-colorability, reachability")
    );
    let bip = mso_bipartite(e);
    let rows: Vec<Vec<String>> = [4u32, 5, 6, 7]
        .iter()
        .map(|&n| {
            let c = builders::undirected_cycle(n);
            let v = mso::check_sentence(&c, &bip);
            assert_eq!(v, n % 2 == 0);
            vec![
                format!("C_{n}"),
                report::mark(v).to_owned(),
                if n % 2 == 0 {
                    "even cycle"
                } else {
                    "odd cycle"
                }
                .to_owned(),
            ]
        })
        .collect();
    print!("{}", report::table(&["graph", "2-colorable", "why"], &rows));

    let reach = mso_reachable(e);
    let forest = builders::copies(&builders::undirected_path(3), 2);
    let mut hits = 0;
    for x in 0..6u32 {
        for y in 0..6u32 {
            let v = mso::check_with_binding(&forest, &reach, &[x, y]);
            assert_eq!(v, (x < 3) == (y < 3));
            hits += usize::from(v);
        }
    }
    println!("\nreach(x, y) on two disjoint 3-paths: {hits}/36 pairs reachable (= 2 × 3²),");
    println!("matching BFS exactly. Transitive closure — not FO (E6/E8) — is MSO.");
}
