//! Experiments E6/E8/E9/E10: the locality toolbox in action.
//!
//! Reproduces the survey's §3.4: the BNDP violation of transitive
//! closure on successor chains (Definition 3.3), the Gaifman-locality
//! violation of TC on long chains (Definition 3.5), the Hanf-locality
//! violations of connectivity (cycles) and of the tree test
//! (chain vs chain ⊎ cycle, Definition 3.7), and the empirical
//! hierarchy of Theorem 3.9.
//!
//! Run with: `cargo run --release --example locality_analysis`

use fmt_core::locality::bndp;
use fmt_core::proofs::{BndpCertificate, GaifmanCertificate, HanfCertificate};
use fmt_core::queries::graph;
use fmt_core::report;
use fmt_core::structures::{builders, Elem, Signature, Structure};
use std::collections::HashSet;

fn tc_pairs(s: &Structure) -> HashSet<Vec<Elem>> {
    let t = graph::transitive_closure(s);
    let e = t.signature().relation("E").unwrap();
    t.rel(e).iter().map(<[u32]>::to_vec).collect()
}

fn main() {
    // -----------------------------------------------------------------
    // E6: BNDP — TC on successor chains.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E6 · BNDP: transitive closure on successor chains S_n")
    );
    let family: Vec<Structure> = (4..=12).map(builders::successor_chain).collect();
    let in_rel = family[0].signature().relation("S").unwrap();
    let out_rel = Signature::graph().relation("E").unwrap();
    let profile = bndp::bndp_profile(&family, in_rel, out_rel, graph::transitive_closure);
    let rows: Vec<Vec<String>> = profile
        .iter()
        .map(|o| {
            vec![
                o.input_size.to_string(),
                o.input_max_degree.to_string(),
                o.output_spectrum_size.to_string(),
                format!("{:?}", o.output_spectrum.iter().collect::<Vec<_>>()),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(&["n", "max deg in", "|degs(TC)|", "degs(TC(S_n))"], &rows)
    );
    let cert = BndpCertificate::build(
        "transitive closure",
        family,
        in_rel,
        out_rel,
        graph::transitive_closure,
    )
    .expect("BNDP violation");
    println!(
        "→ input degrees stay ≤ 1 while TC realizes all degrees 0..n−1: BNDP violated\n  certificate check: {}",
        report::mark(cert.check_with(graph::transitive_closure))
    );

    // -----------------------------------------------------------------
    // E8: Gaifman-locality — TC on long chains.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E8 · Gaifman-locality: TC on a long directed chain")
    );
    let cert = GaifmanCertificate::build(
        "transitive closure",
        2,
        |r| builders::directed_path(6 * r + 8),
        tc_pairs,
        3,
    )
    .expect("Gaifman violations at every radius");
    let rows: Vec<Vec<String>> = cert
        .rows
        .iter()
        .map(|(s, _, v)| {
            vec![
                v.radius.to_string(),
                s.size().to_string(),
                format!("{:?}", v.tuple_in),
                format!("{:?}", v.tuple_out),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["radius r", "chain length", "(a,b) ∈ TC", "(b,a) ∉ TC"],
            &rows
        )
    );
    println!(
        "→ N_r(a,b) ≅ N_r(b,a) yet TC distinguishes them, for every r: TC is not\n  Gaifman-local at any radius.  certificate check: {}",
        report::mark(cert.check())
    );

    // -----------------------------------------------------------------
    // E9: Hanf-locality — connectivity and the tree test.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E9 · Hanf-locality: connectivity on C_m ⊎ C_m vs C_2m")
    );
    let conn_cert = HanfCertificate::build(
        "connectivity",
        |r| {
            let m = 2 * r + 2; // m > 2r + 1
            (
                builders::copies(&builders::undirected_cycle(m), 2),
                builders::undirected_cycle(2 * m),
            )
        },
        graph::is_connected,
        4,
    )
    .expect("Hanf violations at every radius");
    let rows: Vec<Vec<String>> = conn_cert
        .rows
        .iter()
        .map(|(a, b, v)| {
            vec![
                v.radius.to_string(),
                format!("2 × C_{}", a.size() / 2),
                format!("C_{}", b.size()),
                report::mark(v.q_first).to_owned(),
                report::mark(v.q_second).to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(&["radius r", "G1", "G2", "conn(G1)", "conn(G2)"], &rows)
    );
    println!(
        "→ G1 ⇆_r G2 (bijection preserving r-neighborhood types exists) yet exactly\n  one is connected.  certificate check: {}",
        report::mark(conn_cert.check())
    );

    let tree_cert = HanfCertificate::build(
        "tree test",
        |r| {
            let m = 2 * r + 2;
            (
                builders::undirected_path(2 * m),
                builders::undirected_path(m)
                    .disjoint_union(&builders::undirected_cycle(m))
                    .unwrap(),
            )
        },
        graph::is_tree,
        3,
    )
    .expect("tree-test violations");
    println!(
        "same scheme defeats the tree test (chain 2m vs chain m ⊎ cycle m): check = {}",
        report::mark(tree_cert.check())
    );

    // -----------------------------------------------------------------
    // E10: the hierarchy (Theorem 3.9) seen empirically.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E10 · the hierarchy Hanf ⇒ Gaifman ⇒ BNDP (Thm 3.9)")
    );
    println!("query                   defeated by");
    println!("----------------------  -------------------------------------------");
    println!("transitive closure      BNDP (E6), Gaifman (E8) — per Thm 3.9, BNDP");
    println!("                        failure already implies Gaifman failure");
    println!("connectivity            Hanf (E9) — Boolean query, Hanf is the tool");
    println!("tree test               Hanf (E9)");
    println!("same-generation         BNDP (see datalog_same_generation example)");
}
