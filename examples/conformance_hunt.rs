//! Conformance hunt: the differential-testing subsystem from the API.
//!
//! Runs a seeded hunt over every oracle (cross-engine FO evaluation,
//! parser/printer inversion, EF solver vs Theorem 3.1 closed forms,
//! Hanf locality vs direct game search, Datalog engine agreement),
//! prints the per-oracle case counts and the `conform.*` instrumentation
//! counters, then demonstrates the shrinker on a synthetic failure.
//!
//! Run with: `cargo run --release --example conformance_hunt`

use fmt_conform::{minimize, RunConfig, Shrinkable};
use fmt_core::report;
use fmt_core::structures::{builders, Structure};

fn main() {
    // -----------------------------------------------------------------
    // 1. A seeded hunt: every case is reproducible from (seed, index).
    // -----------------------------------------------------------------
    print!("{}", report::section("Seeded conformance hunt"));
    fmt_core::obs::enable();
    let cfg = RunConfig {
        seed: 42,
        cases: 600,
        ..RunConfig::default()
    };
    let rep = fmt_conform::run(&cfg).expect("oracle registry is well-formed");
    println!("seed {}, {} cases:", cfg.seed, rep.cases_run);
    for (name, n) in &rep.per_oracle {
        println!("  {name:<16} {n} cases");
    }
    assert!(rep.clean(), "disagreements: {:?}", rep.failures);
    println!("all oracles agree");

    // -----------------------------------------------------------------
    // 2. What the run did, from the conform.* counters.
    // -----------------------------------------------------------------
    print!("{}", report::section("Instrumentation"));
    let snap = fmt_core::obs::snapshot();
    for (name, value) in &snap.counters {
        if name.starts_with("conform.") {
            println!("  {name:<32} {value}");
        }
    }

    // -----------------------------------------------------------------
    // 3. The shrinker, on a synthetic failure: "has a directed path of
    //    length 2". Greedy descent lands on a minimal witness.
    // -----------------------------------------------------------------
    print!("{}", report::section("Shrinking a counterexample"));
    let has_path2 = |s: &Structure| {
        let e = s.signature().relation("E").unwrap();
        let edges: Vec<_> = s.rel(e).iter().collect();
        edges.iter().any(|a| {
            edges
                .iter()
                .any(|b| a[1] == b[0] && (a[0] != b[0] || a[1] != b[1]))
        })
    };
    let big = builders::complete_graph(5);
    let e = big.signature().relation("E").unwrap();
    println!(
        "start : K_5 ({} vertices, {} edges)",
        big.size(),
        big.rel(e).len()
    );
    let (small, steps) = minimize(big, &mut |s| has_path2(s), 10_000);
    println!(
        "shrunk: {} vertices, {} edges  ({} candidates tried)",
        small.size(),
        small.rel(e).len(),
        steps
    );
    assert!(has_path2(&small), "shrinking preserved the property");
    assert!(small.rel(e).len() <= 2, "minimal witness is two edges");
    // Shrinkable is a public trait: candidate enumeration is reusable.
    assert!(!small.shrink_candidates().is_empty());
}
