//! Experiment E3/E4: EVEN is not FO-expressible — over pure sets and
//! over linear orders (Theorem 3.1).
//!
//! Reproduces the survey's §3.2: the rank table `rank(L_m, L_k)`, the
//! sharp threshold `2ⁿ − 1` of Theorem 3.1, the closed-form duplicator
//! strategies under random attack, and the full machine-checked
//! certificates.
//!
//! Run with: `cargo run --release --example inexpressibility_even`

use fmt_core::games::closed_form;
use fmt_core::games::play::attack_with_random_spoiler;
use fmt_core::games::solver::{rank, EfSolver, Side};
use fmt_core::proofs::GameFamilyCertificate;
use fmt_core::report;
use fmt_core::structures::builders;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // -----------------------------------------------------------------
    // EVEN over pure sets: duplicator survives min(|A|, |B|) rounds.
    // -----------------------------------------------------------------
    print!("{}", report::section("EVEN over sets (empty vocabulary)"));
    let rows: Vec<Vec<String>> = (1..=5u32)
        .map(|n| {
            let a = builders::set(2 * n);
            let b = builders::set(2 * n + 1);
            let r = rank(&a, &b, 8);
            vec![
                n.to_string(),
                format!("{} vs {}", 2 * n, 2 * n + 1),
                r.to_string(),
                report::mark(r >= n).to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(&["n", "sizes", "rank", "A_n ≡_n B_n"], &rows)
    );
    println!("→ for every n, 2n and 2n+1 elements agree to rank n: EVEN(∅) is not FO.");

    // -----------------------------------------------------------------
    // Theorem 3.1: the rank table of linear orders.
    // -----------------------------------------------------------------
    print!("{}", report::section("Theorem 3.1: rank(L_m, L_k) table"));
    let max = 9u32;
    let mut rows = Vec::new();
    for m in 1..=max {
        let mut row = vec![format!("L_{m}")];
        for k in 1..=max {
            let a = builders::linear_order(m);
            let b = builders::linear_order(k);
            row.push(rank(&a, &b, 4).to_string());
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["".to_owned()];
    headers.extend((1..=max).map(|k| format!("L_{k}")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print!("{}", report::table(&headers_ref, &rows));
    println!("→ off-diagonal entries reach n exactly when both sizes ≥ 2ⁿ − 1,");
    println!("  confirming (the sharp form of) Theorem 3.1: L_m ≡_n L_k for m, k ≥ 2ⁿ.");

    // Cross-validate the closed-form predicate against the solver.
    let mut checked = 0;
    for m in 1..=max as u64 {
        for k in 1..=max as u64 {
            for n in 1..=3u32 {
                let a = builders::linear_order(m as u32);
                let b = builders::linear_order(k as u32);
                assert_eq!(
                    EfSolver::new(&a, &b).duplicator_wins(n),
                    closed_form::orders_equivalent(m, k, n)
                );
                checked += 1;
            }
        }
    }
    println!("  closed-form predicate ⇔ exact solver on {checked} cases: OK");

    // -----------------------------------------------------------------
    // The closed-form duplicator strategy under random attack.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("Interval-halving strategy vs 500 random spoilers")
    );
    let (m, k) = (31u32, 45u32); // both ≥ 2^5 − 1
    let a = builders::linear_order(m);
    let b = builders::linear_order(k);
    let mut rng = StdRng::seed_from_u64(2009);
    let survived = attack_with_random_spoiler(&a, &b, 5, 500, &mut rng, |pairs, left, side, x| {
        closed_form::order_reply(pairs, side == Side::Left, x, m as u64, k as u64, left - 1)
    });
    println!("L_{m} vs L_{k}, 5 rounds: duplicator survived {survived}/500 games");
    assert_eq!(survived, 500);

    // -----------------------------------------------------------------
    // The full certificate.
    // -----------------------------------------------------------------
    print!("{}", report::section("Machine-checked certificate"));
    let cert = GameFamilyCertificate::build(
        "EVEN over linear orders",
        |n| {
            let sz = 1u32 << n;
            (builders::linear_order(sz), builders::linear_order(sz + 1))
        },
        |s| s.size() % 2 == 0,
        3,
    )
    .expect("certificate builds");
    println!(
        "certificate for {:?} up to depth {}: check() = {}",
        cert.query_name,
        cert.depth(),
        report::mark(cert.check_with(|s| s.size() % 2 == 0))
    );
}
