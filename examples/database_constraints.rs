//! A database-theory scenario: integrity constraints, queries, and the
//! limits of FO on an actual (toy) database.
//!
//! The survey's motivation is that FMT is "the backbone of database
//! theory": databases are finite structures, constraints and queries
//! are FO sentences/formulas, Datalog adds recursion, and the toolbox
//! tells you where FO's expressive power ends. This example plays the
//! whole story on a small company database:
//!
//! * schema `worksIn(emp, dept)`, `manages(mgr, dept)`,
//!   `reportsTo(emp, emp)`;
//! * FO **integrity constraints** (every employee has a department,
//!   every department of record has exactly one manager) checked by the
//!   evaluator;
//! * FO **queries** (colleagues, departments without managers) via the
//!   relational-algebra engine;
//! * a **Datalog** query (the reporting chain — transitive closure);
//! * and the toolbox's negative fact: the reporting chain is *not* an
//!   FO query (BNDP violation on chain-of-command inputs).
//!
//! Run with: `cargo run --release --example database_constraints`

use fmt_core::eval::{naive, relalg};
use fmt_core::locality::bndp;
use fmt_core::logic::{parser::parse_formula, Query};
use fmt_core::queries::datalog::Program;
use fmt_core::report;
use fmt_core::structures::{Signature, Structure, StructureBuilder};

/// Builds the company database.
///
/// Domain: 0..6 are employees (0 = CEO), 6..9 are departments
/// (6 = Eng, 7 = Sales, 8 = Legal — legal has no staff and no manager).
fn company() -> Structure {
    let sig = Signature::builder()
        .relation("worksIn", 2)
        .relation("manages", 2)
        .relation("reportsTo", 2)
        .finish_arc();
    let works = sig.relation("worksIn").unwrap();
    let manages = sig.relation("manages").unwrap();
    let reports = sig.relation("reportsTo").unwrap();
    let mut b = StructureBuilder::new(sig, 9);
    // Eng: employees 1, 2, 3; Sales: 4, 5; CEO 0 sits in Eng too.
    for (e, d) in [(0u32, 6u32), (1, 6), (2, 6), (3, 6), (4, 7), (5, 7)] {
        b.add(works, &[e, d]).unwrap();
    }
    // Managers: 1 manages Eng, 4 manages Sales.
    b.add(manages, &[1, 6]).unwrap();
    b.add(manages, &[4, 7]).unwrap();
    // Reporting: 2,3 → 1 → 0 and 5 → 4 → 0.
    for (e, m) in [(2u32, 1u32), (3, 1), (1, 0), (5, 4), (4, 0)] {
        b.add(reports, &[e, m]).unwrap();
    }
    b.build().unwrap()
}

fn main() {
    let db = company();
    let sig = db.signature().clone();

    // -----------------------------------------------------------------
    // Integrity constraints as FO sentences.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("Integrity constraints (FO sentences)")
    );
    let constraints = [
        (
            "every employee works somewhere",
            // employees = things that report or are reported to or work somewhere…
            // here: anyone who reports to someone must have a department.
            "forall e m. reportsTo(e, m) -> exists d. worksIn(e, d)",
        ),
        (
            "managers belong to the department they manage",
            "forall m d. manages(m, d) -> worksIn(m, d)",
        ),
        (
            "everyone on payroll reports to someone (fails: the CEO)",
            "forall e. (exists d. worksIn(e, d)) -> exists m. reportsTo(e, m)",
        ),
        (
            "at most one manager per department",
            "forall d m1 m2. (manages(m1, d) & manages(m2, d)) -> m1 = m2",
        ),
        (
            "every staffed department has a manager",
            "forall d. (exists e. worksIn(e, d)) -> (exists m. manages(m, d))",
        ),
    ];
    let rows: Vec<Vec<String>> = constraints
        .iter()
        .map(|(gloss, src)| {
            let f = parse_formula(&sig, src).unwrap();
            vec![
                (*gloss).to_owned(),
                report::mark(naive::check_sentence(&db, &f)).to_owned(),
            ]
        })
        .collect();
    print!("{}", report::table(&["constraint", "holds"], &rows));
    println!("→ the evaluator is the constraint checker: four constraints hold and");
    println!("  the violation is real — the CEO works in Eng but reports to nobody.");

    // -----------------------------------------------------------------
    // Queries, set-at-a-time.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("Queries (relational-algebra evaluation)")
    );
    let colleagues =
        Query::parse(&sig, "exists d. worksIn(x, d) & worksIn(y, d) & !(x = y)").unwrap();
    let pairs = relalg::answers(&db, &colleagues);
    println!("colleagues(x, y): {} ordered pairs", pairs.len());
    let unmanaged = Query::parse(
        &sig,
        "(exists e. worksIn(e, x)) & !(exists m. manages(m, x))",
    )
    .unwrap();
    println!(
        "staffed departments without a manager: {:?} (none — constraint held)",
        relalg::answers(&db, &unmanaged)
    );
    let skip_level = Query::parse(&sig, "exists m. reportsTo(x, m) & reportsTo(m, y)").unwrap();
    println!(
        "skip-level reports (x, boss's boss): {:?}",
        relalg::answers(&db, &skip_level)
    );

    // -----------------------------------------------------------------
    // Recursion needs Datalog: the chain of command.
    // -----------------------------------------------------------------
    print!("{}", report::section("The chain of command (Datalog)"));
    let prog = Program::parse(
        &sig,
        "chain(x, y) :- reportsTo(x, y). chain(x, z) :- reportsTo(x, y), chain(y, z).",
    )
    .unwrap();
    let out = prog.eval_seminaive(&db);
    let chain = prog.idb("chain").unwrap();
    let mut tuples: Vec<Vec<u32>> = out.relation(chain).iter().collect();
    tuples.sort();
    println!("chain(x, y) — y is above x:");
    for t in &tuples {
        println!("  chain({}, {})", t[0], t[1]);
    }
    assert!(out.relation(chain).contains(&[2, 0])); // IC 2 → CEO

    // -----------------------------------------------------------------
    // And the toolbox's negative fact: chain is not FO.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("Why `chain` needs Datalog: a BNDP argument")
    );
    // Family: command chains of growing depth (reportsTo = successor).
    let make_chain = |n: u32| {
        let sig = Signature::builder().relation("reportsTo", 2).finish_arc();
        let r = sig.relation("reportsTo").unwrap();
        let mut b = StructureBuilder::new(sig, n);
        for i in 1..n {
            b.add(r, &[i, i - 1]).unwrap();
        }
        b.build().unwrap()
    };
    let family: Vec<Structure> = (4..=9).map(make_chain).collect();
    let in_rel = family[0].signature().relation("reportsTo").unwrap();
    let out_rel = Signature::graph().relation("E").unwrap();
    let profile = bndp::bndp_profile(&family, in_rel, out_rel, |s| {
        fmt_core::queries::graph::transitive_closure(s)
    });
    let rows: Vec<Vec<String>> = profile
        .iter()
        .map(|o| {
            vec![
                o.input_size.to_string(),
                o.input_max_degree.to_string(),
                o.output_spectrum_size.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(&["chain length", "max deg in", "|degs(chain*)|"], &rows)
    );
    assert!(bndp::witnesses_bndp_violation(&profile));
    println!("→ org charts have degree ≤ 1 here, yet the full reporting relation");
    println!("  realizes ever more degrees: by Theorem 3.4 no FO query computes it.");
    println!("  That is why real query languages grew recursion (Datalog, SQL WITH");
    println!("  RECURSIVE) — the toolbox knows exactly where FO stops.");
}
