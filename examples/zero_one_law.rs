//! Experiments E13/E14: the FO 0-1 law.
//!
//! Reproduces the survey's final section: convergence of `μₙ(Q₁)` to 0
//! and `μₙ(Q₂)` to 1, the non-convergence of EVEN, extension axioms'
//! probability tending to 1, and the exact decision procedure for the
//! limit via the generic (Rado-style) structure.
//!
//! Run with: `cargo run --release --example zero_one_law`

use fmt_core::logic::{library, parser::parse_formula};
use fmt_core::report;
use fmt_core::structures::Signature;
use fmt_core::zeroone::extension::{decide_mu, extension_axiom_probability, find_generic_witness};
use fmt_core::zeroone::mu::ConvergenceSeries;

fn main() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();

    // -----------------------------------------------------------------
    // E13: convergence of the paper's two examples.
    // -----------------------------------------------------------------
    print!("{}", report::section("E13 · μ_n(Q1) → 0 and μ_n(Q2) → 1"));
    let q1 = library::q1_all_pairs_adjacent(e);
    let q2 = library::q2_distinguishing_neighbor(e);
    println!("Q1 = ∀x∀y (x ≠ y → E(x,y))          \"all pairs adjacent\"");
    println!("Q2 = ∀x∀y (x ≠ y → ∃z (E(z,x) ∧ ¬E(z,y)))  \"distinguishing in-neighbor\"\n");
    let ns = [2u32, 3, 4, 8, 16, 32, 56];
    let s1 = ConvergenceSeries::compute(&sig, &ns, &q1, 300, 2009);
    let s2 = ConvergenceSeries::compute(&sig, &ns, &q2, 300, 2009);
    let rows: Vec<Vec<String>> = ns
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            vec![
                n.to_string(),
                report::prob(s1.values[i]),
                report::prob(s2.values[i]),
                if n <= 4 { "exact" } else { "300 samples" }.to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(&["n", "μ_n(Q1)", "μ_n(Q2)", "method"], &rows)
    );
    println!("→ Q1 vanishes, Q2 fills in — both have a 0-1 limit.\n");

    // EVEN: no limit at all.
    println!("μ_n(EVEN) = 1, 0, 1, 0, … (a deterministic function of n):");
    let rows: Vec<Vec<String>> = (2..=9u32)
        .map(|n| vec![n.to_string(), if n % 2 == 0 { "1" } else { "0" }.to_owned()])
        .collect();
    print!("{}", report::table(&["n", "μ_n(EVEN)"], &rows));
    println!("→ μ(EVEN) does not exist: EVEN violates the 0-1 law, hence is not FO.");

    // -----------------------------------------------------------------
    // E14: extension axioms.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E14 · extension axioms hold almost surely")
    );
    let rows: Vec<Vec<String>> = [6u32, 12, 24, 48, 96]
        .iter()
        .map(|&n| {
            let p0 = extension_axiom_probability(&sig, n, 0, 60, 7);
            let p1 = extension_axiom_probability(&sig, n, 1, 60, 7);
            vec![n.to_string(), report::prob(p0), report::prob(p1)]
        })
        .collect();
    print!(
        "{}",
        report::table(&["n", "P[level ≤ 0]", "P[level ≤ 1]"], &rows)
    );
    let witness = find_generic_witness(&sig, 1, 11).expect("generic witness");
    println!(
        "→ a certified level-1 generic witness of size {} was found (check: {})",
        witness.structure.size(),
        report::mark(witness.check())
    );

    // -----------------------------------------------------------------
    // The decision procedure: exact limits via the generic structure.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("Deciding μ(φ) exactly (symbolic evaluation in the generic structure)")
    );
    let cases = [
        ("exists x. E(x, x)", "a loop exists"),
        ("forall x. E(x, x)", "everything has a loop"),
        (
            "forall x y. exists z. E(x, z) & E(y, z)",
            "common out-neighbor",
        ),
        ("exists x. forall y. E(x, y)", "a dominating vertex"),
        ("forall x. exists y. E(x, y) & !(x = y)", "no sink"),
    ];
    let mut rows = Vec::new();
    for (src, gloss) in cases {
        let f = parse_formula(&sig, src).unwrap();
        let mu = decide_mu(&sig, &f);
        rows.push(vec![
            src.to_owned(),
            gloss.to_owned(),
            u8::from(mu).to_string(),
        ]);
    }
    rows.push(vec![
        "Q1".into(),
        "all pairs adjacent".into(),
        u8::from(decide_mu(&sig, &q1)).to_string(),
    ]);
    rows.push(vec![
        "Q2".into(),
        "distinguishing in-neighbor".into(),
        u8::from(decide_mu(&sig, &q2)).to_string(),
    ]);
    print!("{}", report::table(&["sentence", "gloss", "μ"], &rows));
    println!("→ matches the Monte-Carlo trends above, with zero sampling error.");
}
