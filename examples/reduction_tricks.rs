//! Experiment E5: the reduction tricks of §3.3 (Corollary 3.2).
//!
//! Runs the three FO-definable gadget constructions end to end and
//! verifies the parity correspondences on which the corollary rests:
//! connectivity, acyclicity and transitive closure are not
//! FO-definable, because each would let FO express EVEN over linear
//! orders — contradicting Theorem 3.1.
//!
//! Run with: `cargo run --release --example reduction_tricks`

use fmt_core::queries::reductions;
use fmt_core::queries::{graph, Interpretation};
use fmt_core::report;
use fmt_core::structures::builders;

fn show_gadget(name: &str, gadget: &Interpretation, sizes: &[u32]) {
    print!("{}", report::section(name));
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|&n| {
            let g = gadget.apply(&builders::linear_order(n));
            let e = g.signature().relation("E").unwrap();
            vec![
                n.to_string(),
                if n % 2 == 0 { "even" } else { "odd" }.to_owned(),
                g.rel(e).len().to_string(),
                report::mark(graph::is_connected(&g)).to_owned(),
                graph::num_components(&g).to_string(),
                report::mark(graph::is_acyclic(&g)).to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["n", "parity", "edges", "connected", "components", "acyclic"],
            &rows
        )
    );
}

fn main() {
    println!("All gadgets below are FO interpretations: each edge relation is defined");
    println!("by a first-order formula over <, so if the target property were");
    println!("FO-definable, EVEN over linear orders would be too — contradiction.");

    // -----------------------------------------------------------------
    // Trick 1: EVEN(<) → connectivity.
    // -----------------------------------------------------------------
    show_gadget(
        "Trick 1 · 2nd-successor gadget (paper's figure, orders of size 5 and 6)",
        &reductions::even_to_connectivity(),
        &[3, 4, 5, 6, 7, 8, 9, 10],
    );
    match reductions::verify_conn_correspondence(3, 60) {
        Ok(rows) => println!(
            "→ connected ⟺ odd verified for n = 3..=60 ({} orders); even orders split\n  into exactly 2 components every time.",
            rows.len()
        ),
        Err(row) => panic!("correspondence failed at {row:?}"),
    }

    // -----------------------------------------------------------------
    // Trick 2: EVEN(<) → acyclicity.
    // -----------------------------------------------------------------
    show_gadget(
        "Trick 2 · back-edge gadget",
        &reductions::even_to_acyclicity(),
        &[3, 4, 5, 6, 7, 8],
    );
    match reductions::verify_acycl_correspondence(3, 60) {
        Ok(rows) => println!(
            "→ acyclic ⟺ even verified for n = 3..=60 ({} orders).",
            rows.len()
        ),
        Err(row) => panic!("correspondence failed at {row:?}"),
    }

    // -----------------------------------------------------------------
    // Trick 3: connectivity from transitive closure.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("Trick 3 · CONN from TC: symmetric closure + completeness")
    );
    let suite = vec![
        ("C_8", builders::undirected_cycle(8)),
        (
            "C_4 ⊎ C_4",
            builders::copies(&builders::undirected_cycle(4), 2),
        ),
        ("path_9", builders::directed_path(9)),
        ("tree d=3", builders::full_binary_tree(3)),
        ("empty_5", builders::empty_graph(5)),
        ("K_5", builders::complete_graph(5)),
    ];
    let rows: Vec<Vec<String>> = suite
        .iter()
        .map(|(name, s)| {
            let via_tc = reductions::connectivity_via_tc(s);
            let direct = graph::is_connected(s);
            vec![
                (*name).to_owned(),
                report::mark(via_tc).to_owned(),
                report::mark(direct).to_owned(),
                report::mark(via_tc == direct).to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(&["graph", "TC route", "direct", "agree"], &rows)
    );
    let structures: Vec<_> = suite.into_iter().map(|(_, s)| s).collect();
    assert_eq!(
        reductions::verify_conn_via_tc(&structures),
        Ok(structures.len())
    );
    println!("→ G connected ⟺ TC(symmetric closure) complete: an FO-definable TC");
    println!("  would make connectivity FO-definable too. Corollary 3.2 complete.");
}
