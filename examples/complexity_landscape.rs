//! Experiments E1/E2/E15: the complexity landscape of FO evaluation.
//!
//! Reproduces the survey's §2: combined complexity is exponential in
//! the query and polynomial in the data (Stockmeyer/Vardi; measured as
//! operation counts of the textbook evaluator), data complexity is in
//! AC⁰ (circuit families of constant depth and polynomial size,
//! compiled and cross-validated), and PSPACE-hardness comes from the
//! QBF reduction.
//!
//! Run with: `cargo run --release --example complexity_landscape`

use fmt_core::eval::circuit;
use fmt_core::eval::naive::{Env, NaiveEvaluator};
use fmt_core::eval::qbf::{self, Qbf};
use fmt_core::logic::{library, parser::parse_formula};
use fmt_core::report;
use fmt_core::structures::{builders, Signature};

fn main() {
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();

    // -----------------------------------------------------------------
    // E1: combined complexity O(n^k) — operation counts.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E1 · combined complexity: ops(n, k) for the k-clique query")
    );
    let mut rows = Vec::new();
    for k in 2..=5u32 {
        let f = library::k_clique(e, k);
        let mut row = vec![format!("k = {k}")];
        for n in [4u32, 8, 16, 32] {
            // Empty graphs force the evaluator to exhaust the whole
            // quantifier space modulo early exits.
            let s = builders::complete_graph(n);
            let mut ev = NaiveEvaluator::new(&s);
            let mut env = Env::for_formula(&f);
            ev.eval(&f, &mut env);
            row.push(ev.ops.to_string());
        }
        rows.push(row);
    }
    print!(
        "{}",
        report::table(&["query \\ data", "n=4", "n=8", "n=16", "n=32"], &rows)
    );
    println!("→ each +1 in k multiplies the work by ≈ n (exponential in the query);");
    println!("  each doubling of n multiplies it by ≈ 2^k (polynomial in the data).");

    // -----------------------------------------------------------------
    // E2: AC⁰ circuits — constant depth, polynomial size.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E2 · AC⁰: circuit family of ∀x∃y (E(x,y) ∧ ¬E(y,x))")
    );
    let f = parse_formula(&sig, "forall x. exists y. E(x, y) & !E(y, x)").unwrap();
    let rows: Vec<Vec<String>> = [2u32, 4, 8, 16, 32, 64]
        .iter()
        .map(|&n| {
            let (c, _) = circuit::compile(&sig, &f, n);
            vec![
                n.to_string(),
                c.num_inputs().to_string(),
                c.size().to_string(),
                c.depth().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(&["n", "input bits", "gates", "depth"], &rows)
    );
    println!("→ depth is constant in n; size grows like n² (one gate per (x, y) pair):");
    println!("  exactly the AC⁰ circuit family of the survey's proof sketch.");

    // Cross-validate circuit output on random structures.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(65);
    let n = 12;
    let (c, layout) = circuit::compile(&sig, &f, n);
    let mut agree = 0;
    for _ in 0..200 {
        let s = builders::random_directed_graph(n, 0.3, &mut rng);
        let direct = fmt_core::eval::naive::check_sentence(&s, &f);
        if c.eval(&layout.encode(&s)) == direct {
            agree += 1;
        }
    }
    println!("  circuit ⇔ evaluator on 200 random 12-vertex graphs: {agree}/200 agree");
    assert_eq!(agree, 200);

    // -----------------------------------------------------------------
    // E15: PSPACE-hardness via QBF.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E15 · PSPACE-hardness: QBF → FO model checking over ({0,1}, T)")
    );
    let v = |i: u32| Qbf::Var(i);
    let cases: Vec<(&str, Qbf)> = vec![
        (
            "∃p∃q (p ∧ q)",
            Qbf::Exists(
                0,
                Box::new(Qbf::Exists(1, Box::new(Qbf::And(vec![v(0), v(1)])))),
            ),
        ),
        (
            "∃p (p ∧ ¬p)",
            Qbf::Exists(0, Box::new(Qbf::And(vec![v(0), v(0).not()]))),
        ),
        (
            "∀p∃q (p ↔ q)",
            Qbf::Forall(
                0,
                Box::new(Qbf::Exists(
                    1,
                    Box::new(Qbf::Or(vec![
                        Qbf::And(vec![v(0), v(1)]),
                        Qbf::And(vec![v(0).not(), v(1).not()]),
                    ])),
                )),
            ),
        ),
        (
            "∃q∀p (p ↔ q)",
            Qbf::Exists(
                1,
                Box::new(Qbf::Forall(
                    0,
                    Box::new(Qbf::Or(vec![
                        Qbf::And(vec![v(0), v(1)]),
                        Qbf::And(vec![v(0).not(), v(1).not()]),
                    ])),
                )),
            ),
        ),
    ];
    let mut rows = Vec::new();
    for (name, q) in cases {
        let direct = qbf::solve(&q);
        let (s, f) = qbf::to_model_checking(&q);
        let reduced = fmt_core::eval::naive::check_sentence(&s, &f);
        assert_eq!(direct, reduced);
        rows.push(vec![
            name.to_owned(),
            report::mark(direct).to_owned(),
            report::mark(reduced).to_owned(),
        ]);
    }
    print!("{}", report::table(&["QBF", "QBF solver", "B ⊨ φ*"], &rows));
    println!("→ the two-element structure B = ({{0,1}}, T = {{1}}) simulates QBF:");
    println!("  model checking inherits PSPACE-hardness (combined complexity).");
}
