//! Experiment E7: the same-generation Datalog query violates the BNDP.
//!
//! Reproduces the survey's §3.4 example: on a full binary tree of depth
//! `d` (degrees ≤ 3), the same-generation query's output realizes all
//! degrees `1, 2, 4, …, 2^d` — so, by Theorem 3.4, it is not
//! FO-definable. Also compares naive vs semi-naive Datalog evaluation.
//!
//! Run with: `cargo run --release --example datalog_same_generation`

use fmt_core::locality::bndp;
use fmt_core::queries::datalog::Program;
use fmt_core::report;
use fmt_core::structures::{builders, Signature, Structure, StructureBuilder};

/// Materializes the same-generation output as a graph structure so the
/// degree machinery applies.
fn sg_graph(s: &Structure) -> Structure {
    let prog = Program::same_generation();
    let out = prog.eval_seminaive(s);
    let sg = prog.idb("sg").unwrap();
    let sig = Signature::graph();
    let e = sig.relation("E").unwrap();
    let mut b = StructureBuilder::new(sig, s.size());
    for t in out.relation(sg) {
        b.add(e, &t).expect("in range");
    }
    b.build().expect("constant-free")
}

fn main() {
    print!(
        "{}",
        report::section("E7 · same-generation on full binary trees")
    );
    println!("program:  sg(x, x).");
    println!("          sg(x, y) :- e(xp, x), e(yp, y), sg(xp, yp).\n");

    let family: Vec<Structure> = (1..=7).map(builders::full_binary_tree).collect();
    let e = Signature::graph().relation("E").unwrap();
    let profile = bndp::bndp_profile(&family, e, e, sg_graph);
    let rows: Vec<Vec<String>> = profile
        .iter()
        .enumerate()
        .map(|(i, o)| {
            vec![
                (i + 1).to_string(),
                o.input_size.to_string(),
                o.input_max_degree.to_string(),
                o.output_spectrum_size.to_string(),
                format!("{:?}", o.output_spectrum.iter().collect::<Vec<_>>()),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &["depth d", "n", "max deg in", "|degs(sg)|", "degs(sg)"],
            &rows
        )
    );
    assert!(bndp::witnesses_bndp_violation(&profile));
    println!("→ inputs have degree ≤ 3 but sg realizes degrees 1, 2, 4, …, 2^d:");
    println!("  the BNDP is violated, so same-generation is not FO-definable (Thm 3.4).");

    // -----------------------------------------------------------------
    // Naive vs semi-naive evaluation.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("Datalog engines: naive vs semi-naive derivation counts")
    );
    let prog = Program::same_generation();
    let rows: Vec<Vec<String>> = (2..=6u32)
        .map(|d| {
            let s = builders::full_binary_tree(d);
            let naive = prog.eval_naive(&s);
            let semi = prog.eval_seminaive(&s);
            let sg = prog.idb("sg").unwrap();
            assert_eq!(naive.relation(sg), semi.relation(sg));
            vec![
                d.to_string(),
                s.size().to_string(),
                naive.relation(sg).len().to_string(),
                naive.derivations.to_string(),
                semi.derivations.to_string(),
                format!("{:.1}×", naive.derivations as f64 / semi.derivations as f64),
            ]
        })
        .collect();
    print!(
        "{}",
        report::table(
            &[
                "depth",
                "n",
                "|sg|",
                "naive derivs",
                "semi-naive derivs",
                "saving"
            ],
            &rows
        )
    );
    println!("→ identical fixpoints; semi-naive avoids rederiving old facts each round.");
}
