//! Experiment E10: linear-time FO evaluation on bounded-degree classes
//! (Theorem 3.11), plus Gaifman's theorem machinery (E12).
//!
//! Reproduces the survey's §3.5: after a precomputation that is
//! independent of the input, FO sentences are evaluated on degree-≤k
//! structures by one linear census pass; the crossover against the
//! generic O(n^width) evaluator is shown on growing cycles. The second
//! half evaluates basic local sentences (Theorem 3.12) against direct
//! FO evaluation.
//!
//! Run with: `cargo run --release --example linear_time_bounded_degree`

use fmt_core::eval::bounded_degree::{BoundedDegreeEvaluator, HanfParameters};
use fmt_core::eval::local::BasicLocalSentence;
use fmt_core::eval::relalg;
use fmt_core::logic::parser::parse_formula;
use fmt_core::report;
use fmt_core::structures::{builders, Signature};
use std::time::Instant;

fn main() {
    let sig = Signature::graph();

    // -----------------------------------------------------------------
    // E10: census-based evaluation vs generic evaluation.
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E10 · Theorem 3.11: linear time on degree-≤2 structures")
    );
    // A rank-3 sentence on which the textbook evaluator does Θ(n²)
    // work on cycles (the inner scans walk most of the domain).
    let f = parse_formula(
        &sig,
        "forall x. exists y. E(x, y) & (exists z. E(y, z) & !(z = x))",
    )
    .unwrap();
    println!("sentence: ∀x∃y (E(x,y) ∧ ∃z (E(y,z) ∧ z ≠ x))");
    println!("          (2-local; calibrated parameters r=2, m=6)\n");
    let params = HanfParameters {
        radius: 2,
        threshold: 6,
    };
    let mut ev = BoundedDegreeEvaluator::with_parameters(sig.clone(), f.clone(), 2, params);
    // Precomputation: prime the census table on small family members
    // (and cross-validate against both reference evaluators there).
    for n in [5u32, 6, 8, 12, 20] {
        let s = builders::undirected_cycle(n);
        let got = ev.evaluate(&s);
        assert_eq!(got, relalg::check_sentence(&s, &f));
        assert_eq!(got, fmt_core::eval::naive::check_sentence(&s, &f));
    }
    println!(
        "precomputation: {} full evaluations filled a table of {} capped censuses\n",
        ev.stats.full_evaluations,
        ev.table_len()
    );
    let mut rows = Vec::new();
    for exp in [9u32, 10, 11, 12, 13] {
        let n = 1u32 << exp;
        let s = builders::undirected_cycle(n);
        let t0 = Instant::now();
        let census_answer = ev.evaluate(&s);
        let census_time = t0.elapsed();
        let t1 = Instant::now();
        let generic_answer = fmt_core::eval::naive::check_sentence(&s, &f);
        let generic_time = t1.elapsed();
        assert_eq!(census_answer, generic_answer);
        rows.push(vec![
            format!("2^{exp}"),
            format!("{:.1?}", census_time),
            format!("{:.1?}", generic_time),
            format!(
                "{:.1}×",
                generic_time.as_secs_f64() / census_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print!(
        "{}",
        report::table(
            &[
                "n (cycle)",
                "census pass (Thm 3.11)",
                "textbook O(nᵏ)",
                "speedup"
            ],
            &rows
        )
    );
    println!(
        "→ all large cycles hit the table ({} hits total); the census pass scales",
        ev.stats.table_hits
    );
    println!("  linearly while the textbook evaluator is quadratic here — the");
    println!("  crossover widens with n, exactly the shape of Theorem 3.11.");

    // Conservative (provably sound) parameters for reference.
    let auto = fmt_core::eval::bounded_degree::hanf_parameters(f.quantifier_rank(), 2);
    println!(
        "\nconservative sound parameters for qr = {} on degree ≤ 2: r = {}, m = {}",
        f.quantifier_rank(),
        auto.radius,
        auto.threshold
    );

    // -----------------------------------------------------------------
    // E12: basic local sentences (Gaifman's theorem building blocks).
    // -----------------------------------------------------------------
    print!(
        "{}",
        report::section("E12 · Theorem 3.12: basic local sentences")
    );
    // φ(x) = "x is an endpoint" (degree exactly one), a 1-local formula.
    let endpoint = parse_formula(
        &sig,
        "x = x & (exists y. E(x, y)) & forall y z. (E(x,y) & E(x,z)) -> y = z",
    )
    .unwrap();
    let two_endpoints_far =
        BasicLocalSentence::new(2, 2, endpoint).expect("valid basic local sentence");
    println!("basic local sentence: ∃x1∃x2 (d(x1,x2) > 4 ∧ endpoint(x1) ∧ endpoint(x2))\n");
    let suite = vec![
        ("path_12", builders::undirected_path(12)),
        ("path_5", builders::undirected_path(5)),
        ("cycle_12", builders::undirected_cycle(12)),
        (
            "2 paths_6",
            builders::copies(&builders::undirected_path(6), 2),
        ),
        ("tree d=3", builders::full_binary_tree(3)),
    ];
    // The equivalent plain FO sentence, with distance > 4 spelled out.
    let direct = parse_formula(
        &sig,
        "exists a b. \
           ((exists y. E(a, y)) & (forall y z. (E(a,y) & E(a,z)) -> y = z)) \
         & ((exists y. E(b, y)) & (forall y z. (E(b,y) & E(b,z)) -> y = z)) \
         & !(a = b) \
         & !(E(a,b) | E(b,a)) \
         & !(exists m. (E(a,m) | E(m,a)) & (E(m,b) | E(b,m))) \
         & !(exists m p. (E(a,m) | E(m,a)) & (E(m,p) | E(p,m)) & (E(p,b) | E(b,p))) \
         & !(exists m p q. (E(a,m) | E(m,a)) & (E(m,p) | E(p,m)) & (E(p,q) | E(q,p)) & (E(q,b) | E(b,q)))",
    )
    .unwrap();
    let mut rows = Vec::new();
    for (name, s) in &suite {
        let local = two_endpoints_far.evaluate(s);
        let plain = relalg::check_sentence(s, &direct);
        assert_eq!(local, plain, "mismatch on {name}");
        rows.push(vec![
            (*name).to_owned(),
            report::mark(local).to_owned(),
            report::mark(plain).to_owned(),
        ]);
    }
    print!(
        "{}",
        report::table(&["structure", "local eval", "plain FO eval"], &rows)
    );
    println!("→ the scattered-witness evaluation of the basic local sentence agrees");
    println!("  with direct FO evaluation — the two sides of Gaifman's normal form.");
}
