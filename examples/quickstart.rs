//! Quickstart: a tour of the finite model theory toolbox.
//!
//! Builds structures, evaluates FO queries, plays an EF game, inspects
//! locality, and decides a 0-1 law — one taste of each tool.
//!
//! Run with: `cargo run --release --example quickstart`

use fmt_core::eval::{naive, relalg};
use fmt_core::games::play::optimal_play;
use fmt_core::games::solver::rank;
use fmt_core::locality::{GaifmanGraph, TypeCensus, TypeRegistry};
use fmt_core::logic::Query;
use fmt_core::report;
use fmt_core::structures::{builders, Signature};
use fmt_core::zeroone;

fn main() {
    // -----------------------------------------------------------------
    // 1. Databases are finite structures; FO is the query language.
    // -----------------------------------------------------------------
    print!("{}", report::section("FO as a query language"));
    let sig = Signature::graph();
    let g = builders::directed_cycle(6);
    let q = Query::parse(&sig, "exists z. E(x, z) & E(z, y)").unwrap();
    println!("structure: directed 6-cycle");
    println!("query    : {q}   (\"y is two steps from x\")");
    let answers = naive::answers(&g, &q);
    println!("answers  : {answers:?}");
    assert_eq!(answers, relalg::answers(&g, &q), "engines agree");

    // -----------------------------------------------------------------
    // 2. Ehrenfeucht–Fraïssé games measure FO's resolving power.
    // -----------------------------------------------------------------
    print!("{}", report::section("Ehrenfeucht–Fraïssé games"));
    let l7 = builders::linear_order(7);
    let l8 = builders::linear_order(8);
    let r = rank(&l7, &l8, 5);
    println!("rank(L_7, L_8) = {r}  (duplicator survives {r} rounds; 2^3 - 1 = 7 ≤ both)");
    let trace = optimal_play(&l7, &l8, r + 1);
    println!(
        "an optimal {}-round game: {} — spoiler {}",
        r + 1,
        trace
            .rounds
            .iter()
            .map(|m| format!("({:?} {} ↦ {})", m.side, m.spoiler, m.duplicator))
            .collect::<Vec<_>>()
            .join(" "),
        if trace.duplicator_survived {
            "failed"
        } else {
            "won"
        }
    );

    // -----------------------------------------------------------------
    // 3. Locality: FO can only see bounded-radius neighborhoods.
    // -----------------------------------------------------------------
    print!("{}", report::section("Locality"));
    let chain = builders::undirected_path(30);
    let gg = GaifmanGraph::new(&chain);
    let mut reg = TypeRegistry::new();
    let census = TypeCensus::compute_with_gaifman(&chain, &gg, 2, &mut reg);
    println!(
        "a 30-chain realizes {} radius-2 neighborhood types over {} nodes",
        census.num_types(),
        census.total()
    );

    // -----------------------------------------------------------------
    // 4. 0-1 laws: FO sentences have limit probability 0 or 1.
    // -----------------------------------------------------------------
    print!("{}", report::section("0-1 law"));
    let f = fmt_core::logic::parser::parse_formula(&sig, "exists x y. E(x, y) & E(y, x)").unwrap();
    let mu = zeroone::decide_mu(&sig, &f);
    println!("μ(∃x∃y E(x,y) ∧ E(y,x)) = {}", u8::from(mu));
    let est = zeroone::mu_estimate(&sig, 12, &f, 400, 42);
    println!("μ_12 estimated from 400 samples: {}", report::prob(est));

    println!("\nAll four tools answered consistently. See the other examples for depth.");
}
