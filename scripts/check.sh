#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, and the tier-1 build + test gate.
# Run from anywhere; everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint gate: corpus and clean fixtures must pass --deny warnings"
cargo build --release -q -p fmt-cli
FMTK="target/release/fmtk"
"$FMTK" lint --deny warnings tests/lint/clean.fo tests/lint/clean.dl
for case in tests/corpus/*.case; do
    if grep -q '^param: mutant = true$' "$case"; then
        # Mutant stratified cases exist *because* lint rejects their
        # programs (D006/D007); that rejection is the pinned behavior.
        if "$FMTK" lint --deny warnings "$case" > /dev/null 2>&1; then
            echo "mutant case $case unexpectedly lint-clean" >&2
            exit 1
        fi
    else
        "$FMTK" lint --deny warnings "$case"
    fi
done

echo "==> lint gate: every trigger fixture must FAIL under --deny warnings"
for fixture in tests/lint/[FD][0-9][0-9][0-9].*; do
    # F006 only fires when a sentence is expected.
    flags=()
    [[ "$fixture" == *F006* ]] && flags=(--sentence)
    if "$FMTK" lint --deny warnings "${flags[@]}" "$fixture" > /dev/null 2>&1; then
        echo "lint fixture $fixture unexpectedly passed" >&2
        exit 1
    fi
done

echo "==> conformance smoke hunt (fixed seed, fails on any oracle disagreement)"
mkdir -p target/conform-corpus
cargo run --release -q -p fmt-cli --bin fmtk -- \
    conform --seed 7 --cases 240 --corpus target/conform-corpus

echo "==> budget fault-injection smoke sweep (fixed seed, 240 cases)"
cargo run --release -q -p fmt-cli --bin fmtk -- \
    conform --oracle budget-fault --seed 11 --cases 240

echo "==> incremental trace-equivalence sweep (fixed seed, 240 cases)"
cargo run --release -q -p fmt-cli --bin fmtk -- \
    conform --oracle incremental --seed 13 --cases 240

echo "==> stratified negation sweep (fixed seed, 240 cases)"
cargo run --release -q -p fmt-cli --bin fmtk -- \
    conform --oracle stratified --seed 17 --cases 240

echo "==> magic-sets goal-directed sweep (fixed seed, 240 cases)"
cargo run --release -q -p fmt-cli --bin fmtk -- \
    conform --oracle magic --seed 19 --cases 240

echo "==> budget overhead gate (unlimited budget within 5% of tc_path_512 baseline)"
# Per-process code/heap layout moves hot-loop timings by a few percent,
# so retry across process spawns: a real regression fails every spawn.
overhead_ok=0
for attempt in 1 2 3 4 5; do
    if cargo run --release -q -p fmt-bench --bin budget_overhead; then
        overhead_ok=1
        break
    fi
    echo "  (attempt $attempt hit an unlucky layout or noisy window; respawning)"
done
if [[ "$overhead_ok" != 1 ]]; then
    echo "budget overhead gate failed on all attempts" >&2
    exit 1
fi

echo "==> throughput gate (columnar engine >=5x tuples/sec over pre-columnar baseline)"
throughput_ok=0
for attempt in 1 2 3 4 5; do
    if cargo run --release -q -p fmt-bench --bin throughput_gate; then
        throughput_ok=1
        break
    fi
    echo "  (attempt $attempt hit an unlucky layout or noisy window; respawning)"
done
if [[ "$throughput_ok" != 1 ]]; then
    echo "throughput gate failed on all attempts" >&2
    exit 1
fi

echo "==> incremental gate (maintained update >=5x faster than from-scratch on tc_path_512)"
incr_ok=0
for attempt in 1 2 3 4 5; do
    if cargo run --release -q -p fmt-bench --bin incr_gate; then
        incr_ok=1
        break
    fi
    echo "  (attempt $attempt hit an unlucky layout or noisy window; respawning)"
done
if [[ "$incr_ok" != 1 ]]; then
    echo "incremental gate failed on all attempts" >&2
    exit 1
fi

echo "==> magic gate (point query derives >=5x fewer tuples than full materialization)"
# The derivation ratio is deterministic (the engines count derived
# tuples), so one run is authoritative — no respawn loop needed.
cargo run --release -q -p fmt-bench --bin magic_gate

echo "==> trace gate (chrome trace parses, >=90% wall-time attribution, tracing-off within 5%)"
TRACE_DIR=target/trace-gate
mkdir -p "$TRACE_DIR"
{
    echo "size: 512"
    for ((i = 0; i < 511; i++)); do echo "E($i,$((i + 1)))"; done
} > "$TRACE_DIR/tc_path_512.st"
printf 't(x,y) :- e(x,y).\nt(x,z) :- t(x,y), e(y,z).\n' > "$TRACE_DIR/tc.dl"
"$FMTK" --trace "$TRACE_DIR/tc_path_512.trace.json" \
    datalog "$TRACE_DIR/tc_path_512.st" "$TRACE_DIR/tc.dl" > /dev/null
trace_ok=0
for attempt in 1 2 3 4 5; do
    if cargo run --release -q -p fmt-bench --bin trace_gate -- \
        "$TRACE_DIR/tc_path_512.trace.json"; then
        trace_ok=1
        break
    fi
    echo "  (attempt $attempt hit an unlucky layout or noisy window; respawning)"
done
if [[ "$trace_ok" != 1 ]]; then
    echo "trace gate failed on all attempts" >&2
    exit 1
fi

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
    echo "==> benches (RUN_BENCH=1)"
    scripts/bench.sh
fi

echo "All checks passed."
