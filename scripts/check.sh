#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, and the tier-1 build + test gate.
# Run from anywhere; everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> conformance smoke hunt (fixed seed, fails on any oracle disagreement)"
mkdir -p target/conform-corpus
cargo run --release -q -p fmt-cli --bin fmtk -- \
    conform --seed 7 --cases 200 --corpus target/conform-corpus

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
    echo "==> benches (RUN_BENCH=1)"
    scripts/bench.sh
fi

echo "All checks passed."
