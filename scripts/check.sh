#!/usr/bin/env bash
# Repo-wide checks: formatting, lints, and the tier-1 build + test gate.
# Run from anywhere; everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint gate: corpus and clean fixtures must pass --deny warnings"
cargo build --release -q -p fmt-cli
FMTK="target/release/fmtk"
"$FMTK" lint --deny warnings tests/lint/clean.fo tests/lint/clean.dl tests/corpus/*.case

echo "==> lint gate: every trigger fixture must FAIL under --deny warnings"
for fixture in tests/lint/[FD][0-9][0-9][0-9].*; do
    # F006 only fires when a sentence is expected.
    flags=()
    [[ "$fixture" == *F006* ]] && flags=(--sentence)
    if "$FMTK" lint --deny warnings "${flags[@]}" "$fixture" > /dev/null 2>&1; then
        echo "lint fixture $fixture unexpectedly passed" >&2
        exit 1
    fi
done

echo "==> conformance smoke hunt (fixed seed, fails on any oracle disagreement)"
mkdir -p target/conform-corpus
cargo run --release -q -p fmt-cli --bin fmtk -- \
    conform --seed 7 --cases 210 --corpus target/conform-corpus

if [[ "${RUN_BENCH:-0}" == "1" ]]; then
    echo "==> benches (RUN_BENCH=1)"
    scripts/bench.sh
fi

echo "All checks passed."
