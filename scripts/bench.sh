#!/usr/bin/env bash
# Performance harness: runs the Datalog join-engine comparison (which
# writes BENCH_datalog.json at the repo root and enforces the ≥5×
# tuple-comparison gate) plus the criterion smoke benches for the
# Datalog and EF-game engines.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> datalog join-engine harness (writes BENCH_datalog.json)"
cargo run --release -p fmt-bench --bin datalog_bench

echo "==> incremental maintenance harness (appends to BENCH_datalog.json)"
cargo run --release -p fmt-bench --bin datalog_incr_bench

echo "==> magic-sets point-query harness (appends to BENCH_datalog.json)"
cargo run --release -p fmt-bench --bin magic_bench

echo "==> criterion bench: datalog"
cargo bench -p fmt-bench --bench datalog

echo "==> criterion bench: ef_games"
cargo bench -p fmt-bench --bench ef_games

echo "Bench run complete; see BENCH_datalog.json."
