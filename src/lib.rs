//! # fmt-toolbox
//!
//! Umbrella crate for the finite model theory toolbox — a Rust
//! reproduction of L. Libkin, *"The finite model theory toolbox of a
//! database theoretician"*, PODS 2009.
//!
//! This crate simply re-exports [`fmt_core`] (which in turn re-exports
//! every subsystem) and hosts the workspace-level `examples/` and
//! `tests/`. Depend on `fmt-core` (or the individual crates) in library
//! code; use this crate to run the examples:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example inexpressibility_even
//! cargo run --release --example locality_analysis
//! ```

pub use fmt_core::*;
